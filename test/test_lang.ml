(* Tests for the query language: lexer, parser, evaluator, and error
   handling — using the Db engine as catalog provider. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel
module P = Nf2_workload.Paper_data
module Db = Nf2.Db
open Nf2_lang

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- lexer ------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT x.DNO, 42, 3.14, 'it''s', <= <> -- comment\n =" in
  let strs = List.map Lexer.token_to_string toks in
  Alcotest.(check (list string)) "tokens"
    [ "SELECT"; "x"; "."; "DNO"; ","; "42"; ","; "3.14"; ","; "'it's'"; ","; "<="; "<>"; "=" ]
    strs

let test_lexer_keywords_case () =
  (match Lexer.tokenize "select Select SELECT" with
  | [ Lexer.KW "SELECT"; Lexer.KW "SELECT"; Lexer.KW "SELECT" ] -> ()
  | _ -> Alcotest.fail "case-insensitive keywords");
  match Lexer.tokenize "dno DNO Dno" with
  | [ Lexer.IDENT "dno"; Lexer.IDENT "DNO"; Lexer.IDENT "Dno" ] -> ()
  | _ -> Alcotest.fail "idents keep case"

let test_lexer_numbers () =
  (match Lexer.tokenize "320_000 1.5 0" with
  | [ Lexer.INT 320000; Lexer.FLOAT 1.5; Lexer.INT 0 ] -> ()
  | _ -> Alcotest.fail "numbers");
  try
    ignore (Lexer.tokenize "'unterminated");
    Alcotest.fail "expected Lex_error"
  with Lexer.Lex_error _ -> ()

(* --- parser ------------------------------------------------------------- *)

let roundtrip q = Ast.query_to_string (Parser.parse_query_string q)

let test_parse_simple () =
  let s = roundtrip "SELECT x.DNO, x.MGRNO FROM x IN DEPARTMENTS WHERE x.DNO = 314" in
  checks "roundtrip" "SELECT x.DNO, x.MGRNO FROM x IN DEPARTMENTS WHERE x.DNO = 314" s

let test_parse_star_and_nested () =
  (* the paper's shorthand of Example 1: the table name doubles as the
     tuple variable *)
  (match Parser.parse_query_string "SELECT * FROM DEPARTMENTS" with
  | { Ast.select = Ast.Star; from = [ { Ast.rvar = "DEPARTMENTS"; source = Ast.Table_src "DEPARTMENTS"; _ } ]; _ } ->
      ()
  | _ -> Alcotest.fail "shorthand range");
  match Parser.parse_query_string "SELECT * FROM x IN DEPARTMENTS" with
  | { Ast.select = Ast.Star; from = [ { Ast.rvar = "x"; source = Ast.Table_src "DEPARTMENTS"; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "star query"

let test_parse_quantifiers () =
  match
    Parser.parse_query_string
      "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'"
  with
  | { Ast.where = Some (Ast.Exists ({ Ast.rvar = "y"; source = Ast.Path_src _; _ }, Ast.Cmp (Ast.Eq, _, _))); _ } ->
      ()
  | _ -> Alcotest.fail "exists shape"

let test_parse_quantifier_without_colon () =
  (* the paper writes quantifiers without a separator *)
  match
    Parser.parse_query_string
      "SELECT x.DNO FROM x IN DEPARTMENTS WHERE ALL y IN x.PROJECTS ALL z IN y.MEMBERS z.FUNCTION = 'Consultant'"
  with
  | { Ast.where = Some (Ast.Forall (_, Ast.Forall (_, Ast.Cmp _))); _ } -> ()
  | _ -> Alcotest.fail "nested ALL"

let test_parse_subquery_naming () =
  match
    Parser.parse_query_string
      "SELECT x.DNO, (SELECT y.PNO FROM y IN x.PROJECTS) = PROJECTS FROM x IN DEPARTMENTS"
  with
  | { Ast.select = Ast.Items [ _; { Ast.expr = Ast.Subquery _; alias = Some "PROJECTS" } ]; _ } -> ()
  | _ -> Alcotest.fail "postfix naming"

let test_parse_subscript () =
  match Parser.parse_query_string "SELECT x.AUTHORS FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones'" with
  | {
   Ast.where =
     Some (Ast.Cmp (Ast.Eq, Ast.Path { Ast.steps = [ Ast.Field "AUTHORS"; Ast.Subscript 1 ]; _ }, _));
   _;
  } ->
      ()
  | _ -> Alcotest.fail "subscript path"

let test_parse_ddl () =
  (match
     Parser.parse_one
       "CREATE TABLE T (A INT, B TABLE (C TEXT, D LIST (E FLOAT)), F DATE) WITH VERSIONS"
   with
  | Ast.Create_table { name = "T"; versioned = true; fields = [ _; { Ast.ftype = Ast.T_table (Schema.Set, _); _ }; _ ] } ->
      ()
  | _ -> Alcotest.fail "create table");
  (match Parser.parse_one "CREATE INDEX ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION) USING ROOT" with
  | Ast.Create_index { strategy = Ast.S_root; path = [ "PROJECTS"; "MEMBERS"; "FUNCTION" ]; _ } -> ()
  | _ -> Alcotest.fail "create index");
  match Parser.parse_one "CREATE TEXT INDEX ON REPORTS (TITLE)" with
  | Ast.Create_text_index { table = "REPORTS"; path = [ "TITLE" ] } -> ()
  | _ -> Alcotest.fail "create text index"

let test_parse_dml () =
  (match Parser.parse_one "INSERT INTO T VALUES (1, {(2, 'x'), (3, 'y')}, <('a'), ('b')>)" with
  | Ast.Insert { rows = [ [ Ast.L_atom (Atom.Int 1); Ast.L_table (Schema.Set, [ _; _ ]); Ast.L_table (Schema.List, [ _; _ ]) ] ]; _ } ->
      ()
  | _ -> Alcotest.fail "insert literal");
  (match Parser.parse_one "UPDATE T SET A = A + 1 WHERE B = 'x' AT DATE '1984-01-15'" with
  | Ast.Update { sets = [ ("A", Ast.Binop (Ast.Add, _, _)) ]; at = Some (Ast.Const (Atom.Date _)); _ } -> ()
  | _ -> Alcotest.fail "update");
  match Parser.parse_one "DELETE FROM T WHERE A = 1" with
  | Ast.Delete { table = "T"; where = Some _; at = None; _ } -> ()
  | _ -> Alcotest.fail "delete"

let test_parse_script_and_errors () =
  checki "two stmts" 2 (List.length (Parser.parse_script "SELECT * FROM x IN T; SELECT * FROM y IN U;"));
  List.iter
    (fun bad ->
      try
        ignore (Parser.parse_script bad);
        Alcotest.failf "expected parse error for %s" bad
      with Parser.Parse_error _ | Lexer.Lex_error _ -> ())
    [
      "SELECT";
      "SELECT FROM x IN T";
      "SELECT * FROM";
      "SELECT * FROM x T";
      "CREATE TABLE (A INT)";
      "INSERT INTO T VALUES";
      "SELECT * FROM x IN T WHERE";
      "SELECT * FROM x IN T GARBAGE";
    ]

(* --- evaluation through the Db ------------------------------------------------ *)

let demo_db () =
  Nf2.Demo.create ()

let rows db q = Rel.tuples (Db.query db q)

let test_eval_projection_and_where () =
  let db = demo_db () in
  let r = rows db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 330000" in
  checki "two" 2 (List.length r);
  let r = rows db "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.BUDGET >= 320000 AND x.BUDGET <= 360000" in
  checki "range" 2 (List.length r)

let test_eval_arithmetic () =
  let db = demo_db () in
  match rows db "SELECT x.BUDGET + 1000 AS B FROM x IN DEPARTMENTS WHERE x.DNO = 314" with
  | [ [ Value.Atom (Atom.Int 321000) ] ] -> ()
  | _ -> Alcotest.fail "arith"

let test_eval_unqualified_attrs () =
  let db = demo_db () in
  (* attributes without variable prefix resolve innermost-first *)
  let r = rows db "SELECT DNO FROM x IN DEPARTMENTS WHERE BUDGET = 440000" in
  (match r with [ [ Value.Atom (Atom.Int 218) ] ] -> () | _ -> Alcotest.fail "unqualified")

let test_eval_nested_ranges () =
  let db = demo_db () in
  let r = rows db "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS" in
  checki "4 projects" 4 (List.length r)

let test_eval_aggregates () =
  let db = demo_db () in
  (match rows db "SELECT x.DNO, COUNT(x.PROJECTS) AS NP FROM x IN DEPARTMENTS WHERE x.DNO = 314" with
  | [ [ _; Value.Atom (Atom.Int 2) ] ] -> ()
  | _ -> Alcotest.fail "count");
  match rows db "SELECT x.DNO, SUM(x.EQUIP.QU) AS TOTAL FROM x IN DEPARTMENTS WHERE x.DNO = 314" with
  | [ [ _; Value.Atom (Atom.Int 6) ] ] -> ()
  | _ -> Alcotest.fail "sum through path"

let test_eval_order_by () =
  let db = demo_db () in
  let r = Db.query db "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ORDER BY BUDGET DESC" in
  checkb "ordered result is a list" true (Rel.kind r = Schema.List);
  match Rel.tuples r with
  | [ Value.Atom (Atom.Int 218) :: _; Value.Atom (Atom.Int 417) :: _; Value.Atom (Atom.Int 314) :: _ ] -> ()
  | _ -> Alcotest.fail "order"

let test_eval_distinct_set_semantics () =
  let db = demo_db () in
  (* FUNCTION over all members has duplicates; Set-kind result dedups *)
  let r = rows db "SELECT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS" in
  checki "4 distinct functions" 4 (List.length r)

let test_eval_not_or () =
  let db = demo_db () in
  let r =
    rows db
      "SELECT x.DNO FROM x IN DEPARTMENTS WHERE NOT (x.DNO = 314) AND (x.BUDGET = 440000 OR x.BUDGET = 360000)"
  in
  checki "two" 2 (List.length r)

let test_eval_contains_without_index () =
  let db = demo_db () in
  let r = rows db "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*omput*'" in
  (* no title contains comput in the 3 fixture rows *)
  checki "none" 0 (List.length r);
  let r = rows db "SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS 'Text'" in
  checki "one" 1 (List.length r)

let test_eval_subscript_deep () =
  let db = demo_db () in
  (* subscript then attribute *)
  match rows db "SELECT x.AUTHORS[2].NAME AS SECOND FROM x IN REPORTS WHERE x.REPNO = '0292'" with
  | [ [ Value.Atom (Atom.Str "Bach") ] ] -> ()
  | _ -> Alcotest.fail "authors[2].name"

let test_eval_errors () =
  let db = demo_db () in
  List.iter
    (fun q ->
      try
        ignore (Db.exec db q);
        Alcotest.failf "expected error for %s" q
      with Eval.Eval_error _ | Db.Db_error _ | Schema.Schema_error _ -> ())
    [
      "SELECT x.NOPE FROM x IN DEPARTMENTS";
      "SELECT x.DNO FROM x IN NO_SUCH_TABLE";
      "SELECT y.PNO FROM x IN DEPARTMENTS";
      "SELECT x.DNO.Y FROM x IN DEPARTMENTS";
      "SELECT x.AUTHORS[1] FROM x IN DEPARTMENTS";
      "SELECT x.DNO FROM x IN DEPARTMENTS ASOF DATE '1984-01-01'";
      "SELECT x.DESCRIPTORS[1] FROM x IN REPORTS";
      "SELECT x.DNO + x.PROJECTS FROM x IN DEPARTMENTS";
    ]

let test_exec_ddl_dml_cycle () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE T (A INT, XS TABLE (X INT, NAME TEXT))");
  ignore (Db.exec db "INSERT INTO T VALUES (1, {(10, 'ten'), (20, 'twenty')}), (2, {})");
  checki "two rows" 2 (List.length (rows db "SELECT a.A FROM a IN T"));
  (* subtable insert *)
  ignore (Db.exec db "INSERT INTO T.XS WHERE A = 2 VALUES (30, 'thirty')");
  (match rows db "SELECT x.X FROM t IN T, x IN t.XS WHERE t.A = 2" with
  | [ [ Value.Atom (Atom.Int 30) ] ] -> ()
  | _ -> Alcotest.fail "subtable insert");
  (* update with expression over current value *)
  ignore (Db.exec db "UPDATE T SET A = A * 10 WHERE A = 2");
  checki "updated" 1 (List.length (rows db "SELECT t.A FROM t IN T WHERE t.A = 20"));
  (* delete *)
  ignore (Db.exec db "DELETE FROM T WHERE A = 1");
  checki "one left" 1 (List.length (rows db "SELECT t.A FROM t IN T"));
  (* drop *)
  ignore (Db.exec db "DROP TABLE T");
  try
    ignore (Db.exec db "SELECT * FROM t IN T");
    Alcotest.fail "table should be gone"
  with Eval.Eval_error _ | Db.Db_error _ -> ()

let test_exec_schema_violations () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE T (A INT, XS TABLE (X INT))");
  List.iter
    (fun stmt ->
      try
        ignore (Db.exec db stmt);
        Alcotest.failf "expected error: %s" stmt
      with Db.Db_error _ -> ())
    [
      "INSERT INTO T VALUES ('str', {})";
      "INSERT INTO T VALUES (1)";
      "INSERT INTO T VALUES (1, {(1, 2)})";
      "INSERT INTO T VALUES (1, <(1)>)";
      "CREATE TABLE T (B INT)";
      "UPDATE T SET XS = 1";
      "UPDATE T SET NOPE = 1";
    ]

let is_infix_lang needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_index_range_plan () =
  let db = demo_db () in
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (BUDGET)");
  let r = rows db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 330000" in
  checki "two departments" 2 (List.length r);
  checkb "range plan used" true
    (match Db.last_plan db with [ p ] -> is_infix_lang "index-range" p | _ -> false);
  (* strict bound correctness: boundary value excluded by the re-check *)
  let r = rows db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 360000" in
  checki "one department" 1 (List.length r);
  let r = rows db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET >= 360000" in
  checki "two departments (inclusive)" 2 (List.length r);
  (* two-sided via conjunction: both conjuncts produce candidate sets *)
  let r = rows db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET >= 320000 AND x.BUDGET < 440000" in
  checki "middle band" 2 (List.length r)

let test_explain () =
  let db = demo_db () in
  (match Db.exec1 db "EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0" with
  | Db.Msg m ->
      checkb "mentions plan" true (String.starts_with ~prefix:"plan:" m);
      checkb "mentions rows" true (String.length m > 10)
  | Db.Rows _ -> Alcotest.fail "EXPLAIN must not return rows");
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (DNO)");
  match Db.exec1 db "EXPLAIN SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314" with
  | Db.Msg m -> checkb "index plan" true (String.length m > 0 && String.sub m 0 5 = "plan:")
  | Db.Rows _ -> Alcotest.fail "EXPLAIN rows"

let test_subtable_update () =
  let db = demo_db () in
  (* rename one project across all departments *)
  ignore (Db.exec db "UPDATE DEPARTMENTS.PROJECTS SET PNAME = 'RENAMED' WHERE PNO = 17");
  (match rows db "SELECT y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 17" with
  | [ [ Value.Atom (Atom.Str "RENAMED") ] ] -> ()
  | _ -> Alcotest.fail "renamed");
  (* two-level path: promote every Leader *)
  ignore (Db.exec db "UPDATE DEPARTMENTS.PROJECTS.MEMBERS SET FUNCTION = 'Manager' WHERE FUNCTION = 'Leader'");
  checki "no leaders left" 0
    (List.length (rows db "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS WHERE z.FUNCTION = 'Leader'"));
  checki "4 managers" 4
    (List.length (rows db "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS WHERE z.FUNCTION = 'Manager'"));
  (* SET expressions can read element attributes *)
  ignore (Db.exec db "UPDATE DEPARTMENTS.EQUIP SET QU = QU + 10 WHERE TYPE = 'PC'");
  (match rows db "SELECT e.QU FROM x IN DEPARTMENTS, e IN x.EQUIP WHERE e.TYPE = 'PC'" with
  | [ [ Value.Atom (Atom.Int 11) ] ] -> ()
  | _ -> Alcotest.fail "qu bumped");
  (* errors *)
  List.iter
    (fun stmt ->
      try
        ignore (Db.exec db stmt);
        Alcotest.failf "expected error: %s" stmt
      with Db.Db_error _ -> ())
    [
      "UPDATE DEPARTMENTS.PROJECTS SET NOPE = 1";
      "UPDATE DEPARTMENTS.PROJECTS SET MEMBERS = 1";
      "UPDATE DEPARTMENTS.BUDGET SET X = 1";
    ]

let test_subtable_delete () =
  let db = demo_db () in
  ignore (Db.exec db "DELETE FROM DEPARTMENTS.PROJECTS.MEMBERS WHERE FUNCTION = 'Secretary'");
  checki "secretaries gone" 0
    (List.length (rows db "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS WHERE z.FUNCTION = 'Secretary'"));
  checki "13 members left" 13
    (List.length (rows db "SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS"));
  (* deleting complex elements (whole projects) *)
  ignore (Db.exec db "DELETE FROM DEPARTMENTS.PROJECTS WHERE PNO = 23");
  checki "3 projects left" 3 (List.length (rows db "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS"));
  (* objects still intact *)
  checki "3 departments" 3 (List.length (rows db "SELECT x.DNO FROM x IN DEPARTMENTS"))

let test_alter_table () =
  let db = demo_db () in
  ignore (Db.exec db "ALTER TABLE EMPLOYEES_1NF ADD SALARY INT");
  (* existing rows read NULL *)
  (match rows db "SELECT e.SALARY FROM e IN EMPLOYEES_1NF WHERE e.EMPNO = 56194" with
  | [ [ Value.Atom Atom.Null ] ] -> ()
  | _ -> Alcotest.fail "null default");
  (* new column is updatable *)
  ignore (Db.exec db "UPDATE EMPLOYEES_1NF SET SALARY = 50000 WHERE EMPNO = 56194");
  (match rows db "SELECT e.SALARY FROM e IN EMPLOYEES_1NF WHERE e.EMPNO = 56194" with
  | [ [ Value.Atom (Atom.Int 50000) ] ] -> ()
  | _ -> Alcotest.fail "salary set");
  (* adding a table-valued attribute: empty default *)
  ignore (Db.exec db "ALTER TABLE EMPLOYEES_1NF ADD SKILLS TABLE (NAME TEXT)");
  (match rows db "SELECT COUNT(e.SKILLS) AS N FROM e IN EMPLOYEES_1NF WHERE e.EMPNO = 56194" with
  | [ [ Value.Atom (Atom.Int 0) ] ] -> ()
  | _ -> Alcotest.fail "empty skills");
  ignore (Db.exec db "INSERT INTO EMPLOYEES_1NF.SKILLS WHERE EMPNO = 56194 VALUES ('OCaml')");
  (match rows db "SELECT s.NAME FROM e IN EMPLOYEES_1NF, s IN e.SKILLS" with
  | [ [ Value.Atom (Atom.Str "OCaml") ] ] -> ()
  | _ -> Alcotest.fail "skill added");
  (* drop *)
  ignore (Db.exec db "ALTER TABLE EMPLOYEES_1NF DROP SALARY");
  (try
     ignore (rows db "SELECT e.SALARY FROM e IN EMPLOYEES_1NF");
     Alcotest.fail "salary should be gone"
   with Eval.Eval_error _ | Schema.Schema_error _ -> ());
  (* content preserved across both alters *)
  checki "20 employees" 20 (List.length (rows db "SELECT e.EMPNO FROM e IN EMPLOYEES_1NF"));
  (* cannot drop the last attribute *)
  ignore (Db.exec db "CREATE TABLE ONE (A INT)");
  try
    ignore (Db.exec db "ALTER TABLE ONE DROP A");
    Alcotest.fail "expected error"
  with Db.Db_error _ -> ()

let test_alter_keeps_indexes () =
  let db = demo_db () in
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)");
  ignore (Db.exec db "ALTER TABLE DEPARTMENTS ADD NOTES TEXT");
  (* the index still answers after the rebuild *)
  let r =
    rows db
      "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'"
  in
  checki "two consultant departments" 2 (List.length r);
  checkb "index plan survived" true
    (match Db.last_plan db with [ p ] -> String.length p >= 4 && String.sub p 0 4 = "scan" | _ -> false);
  (* dropping an attribute on the index path drops the index *)
  ignore (Db.exec db "ALTER TABLE DEPARTMENTS DROP PROJECTS");
  let r = rows db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0" in
  checki "still 3 departments" 3 (List.length r)

let test_plan_reporting () =
  let db = demo_db () in
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)");
  ignore
    (Db.exec db
       "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'");
  (match Db.last_plan db with
  | [ p ] -> checkb "used index" true (String.length p > 0 && String.sub p 0 4 = "scan")
  | _ -> Alcotest.fail "expected one plan line");
  ignore (Db.exec db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 0");
  match Db.last_plan db with
  | [ p ] -> checkb "full scan" true (String.length p >= 9 && String.sub p 0 9 = "full scan")
  | _ -> Alcotest.fail "expected one plan line"


(* --- language vs algebra equivalence (properties) ------------------------- *)

module Ops = Nf2_algebra.Ops

let arb_kv_rows =
  QCheck.make
    ~print:(fun rows -> String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "(%d,%s)" k v) rows))
    QCheck.Gen.(list_size (int_bound 15) (pair (int_bound 9) (oneofl [ "a"; "b"; "c" ])))

let kv_schema = { Schema.kind = Schema.Set; fields = [ Schema.int_ "K"; Schema.str_ "V" ] }

let db_with_kv rows =
  let db = Db.create () in
  Db.register_table db
    { Schema.name = "T"; table = kv_schema }
    (List.map (fun (k, v) -> [ Value.int_ k; Value.str v ]) rows);
  db

let prop_select_equiv =
  QCheck.Test.make ~name:"language WHERE = algebra select" ~count:60 arb_kv_rows (fun rows ->
      let db = db_with_kv rows in
      let lang = Db.query db "SELECT t.K, t.V FROM t IN T WHERE t.K > 4" in
      let alg =
        Ops.select
          (Rel.of_tuples kv_schema (List.map (fun (k, v) -> [ Value.int_ k; Value.str v ]) rows))
          (fun tup -> match List.nth tup 0 with Value.Atom (Atom.Int k) -> k > 4 | _ -> false)
      in
      Rel.equal lang alg)

let prop_project_equiv =
  QCheck.Test.make ~name:"language SELECT list = algebra project" ~count:60 arb_kv_rows (fun rows ->
      let db = db_with_kv rows in
      let lang = Db.query db "SELECT t.V FROM t IN T" in
      let alg =
        Ops.project (Rel.of_tuples kv_schema (List.map (fun (k, v) -> [ Value.int_ k; Value.str v ]) rows)) [ "V" ]
      in
      Rel.equal lang alg)

let prop_unnest_equiv =
  (* random nested rows: language flattening = algebra unnest *)
  let gen =
    QCheck.Gen.(list_size (int_bound 6) (pair (int_bound 9) (list_size (int_bound 4) (int_bound 9))))
  in
  let nested_schema =
    { Schema.kind = Schema.Set; fields = [ Schema.int_ "K"; Schema.set_ "XS" [ Schema.int_ "X" ] ] }
  in
  QCheck.Test.make ~name:"language nested FROM = algebra unnest" ~count:60
    (QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen)
    (fun rows ->
      let tuples =
        List.map (fun (k, xs) -> [ Value.int_ k; Value.set (List.map (fun x -> [ Value.int_ x ]) xs) ]) rows
      in
      let db = Db.create () in
      Db.register_table db { Schema.name = "N"; table = nested_schema } tuples;
      let lang = Db.query db "SELECT t.K, x.X FROM t IN N, x IN t.XS" in
      let alg = Ops.unnest (Rel.of_tuples nested_schema tuples) ~attr:"XS" in
      Rel.equal lang alg)



let test_eval_null_semantics () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE N (A INT, B INT)");
  ignore (Db.exec db "INSERT INTO N VALUES (1, 10), (2, NULL), (3, 30)");
  (* NULL sorts first and compares as a value (two-valued logic) *)
  checki "b = NULL finds the null row" 1
    (List.length (rows db "SELECT n.A FROM n IN N WHERE n.B = NULL"));
  checki "b > 5 skips null (null sorts first)" 2
    (List.length (rows db "SELECT n.A FROM n IN N WHERE n.B > 5"));
  (* aggregates skip NULL: sum over a nested table with a NULL *)
  ignore (Db.exec db "CREATE TABLE M (ID INT, XS TABLE (X INT))");
  ignore (Db.exec db "INSERT INTO M VALUES (1, {(10), (NULL), (30)})");
  match rows db "SELECT SUM(m.XS.X) AS S, COUNT(m.XS) AS C FROM m IN M" with
  | [ [ Value.Atom (Atom.Int 40); Value.Atom (Atom.Int 3) ] ] -> ()
  | _ -> Alcotest.fail "sum skips null"

let test_eval_dates_and_floats () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE E (NAME TEXT, BORN DATE, SCORE FLOAT)");
  ignore
    (Db.exec db
       "INSERT INTO E VALUES ('a', DATE '1984-01-15', 1.5), ('b', DATE '1986-05-28', 2.25), ('c', DATE '1969-07-20', 0.5)");
  checki "date range" 1
    (List.length (rows db "SELECT e.NAME FROM e IN E WHERE e.BORN >= DATE '1984-01-01' AND e.BORN <= DATE '1985-12-31'"));
  checki "pre-epoch date" 1 (List.length (rows db "SELECT e.NAME FROM e IN E WHERE e.BORN < DATE '1970-01-01'"));
  (match rows db "SELECT e.SCORE * 2 AS D FROM e IN E WHERE e.NAME = 'b'" with
  | [ [ Value.Atom (Atom.Float f) ] ] -> checkb "float arith" true (abs_float (f -. 4.5) < 1e-9)
  | _ -> Alcotest.fail "float");
  (* int literal accepted in float column *)
  ignore (Db.exec db "INSERT INTO E VALUES ('d', DATE '2000-01-01', 3)");
  checki "four rows" 4 (List.length (rows db "SELECT e.NAME FROM e IN E"))

let test_eval_bool_columns () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE F (NAME TEXT, ACTIVE BOOL)");
  ignore (Db.exec db "INSERT INTO F VALUES ('x', TRUE), ('y', FALSE)");
  (* a BOOL attribute is directly usable as a predicate *)
  (match rows db "SELECT f.NAME FROM f IN F WHERE f.ACTIVE" with
  | [ [ Value.Atom (Atom.Str "x") ] ] -> ()
  | _ -> Alcotest.fail "bool predicate");
  match rows db "SELECT f.NAME FROM f IN F WHERE NOT f.ACTIVE" with
  | [ [ Value.Atom (Atom.Str "y") ] ] -> ()
  | _ -> Alcotest.fail "negated bool"

let test_eval_order_by_expressions () =
  let db = demo_db () in
  (* arbitrary expression keys *)
  (match
     Rel.tuples (Db.query db "SELECT x.DNO FROM x IN DEPARTMENTS ORDER BY x.BUDGET + 0 DESC")
   with
  | [ [ Value.Atom (Atom.Int 218) ]; [ Value.Atom (Atom.Int 417) ]; [ Value.Atom (Atom.Int 314) ] ] -> ()
  | _ -> Alcotest.fail "expr key desc");
  (* keys over inner range variables *)
  (match
     Rel.tuples
       (Db.query db "SELECT y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS ORDER BY y.PNO DESC")
   with
  | [ Value.Atom (Atom.Str "NEBS") ] :: _ -> ()
  | _ -> Alcotest.fail "inner var key");
  (* mixed: column name + expression *)
  match
    Rel.tuples
      (Db.query db
         "SELECT z.FUNCTION, z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS ORDER BY FUNCTION, z.EMPNO DESC")
  with
  | [ Value.Atom (Atom.Str "Consultant"); Value.Atom (Atom.Int 89921) ] :: _ -> ()
  | _ -> Alcotest.fail "mixed keys"

let test_eval_distinct_explicit () =
  let db = demo_db () in
  (* ORDER BY yields a list (duplicates kept); DISTINCT dedups it *)
  let r = Db.query db "SELECT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS ORDER BY FUNCTION" in
  checki "17 ordered rows" 17 (Rel.cardinality r);
  let r = Db.query db "SELECT DISTINCT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS ORDER BY FUNCTION" in
  checki "4 distinct ordered" 4 (Rel.cardinality r);
  match Rel.tuples r with
  | [ Value.Atom (Atom.Str "Consultant") ] :: _ -> ()
  | _ -> Alcotest.fail "sorted first"


let test_prepared_statements () =
  let db = demo_db () in
  (* query with two parameters, executed repeatedly *)
  let q =
    Db.prepare db
      "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : (y.PNO = ? AND EXISTS z IN y.MEMBERS : z.FUNCTION = ?)"
  in
  let run pno fn =
    match Db.execute db q [ Atom.Int pno; Atom.Str fn ] with
    | Db.Rows rel -> List.map (fun t -> match t with [ Value.Atom (Atom.Int d) ] -> d | _ -> -1) (Rel.tuples rel)
    | Db.Msg _ -> Alcotest.fail "rows expected"
  in
  Alcotest.(check (list int)) "17/Consultant" [ 314 ] (run 17 "Consultant");
  Alcotest.(check (list int)) "25/Consultant" [ 218 ] (run 25 "Consultant");
  Alcotest.(check (list int)) "23/Consultant" [] (run 23 "Consultant");
  (* DML with parameters *)
  let ins = Db.prepare db "INSERT INTO DEPARTMENTS.EQUIP WHERE DNO = ? VALUES (?, ?)" in
  ignore (Db.execute db ins [ Atom.Int 417; Atom.Int 9; Atom.Str "PLOTTER" ]);
  checki "plotter added" 1
    (List.length (rows db "SELECT e.TYPE FROM x IN DEPARTMENTS, e IN x.EQUIP WHERE e.TYPE = 'PLOTTER'"));
  let upd = Db.prepare db "UPDATE DEPARTMENTS SET BUDGET = ? WHERE DNO = ?" in
  ignore (Db.execute db upd [ Atom.Int 111; Atom.Int 314 ]);
  ignore (Db.execute db upd [ Atom.Int 222; Atom.Int 218 ]);
  (match rows db "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314" with
  | [ [ Value.Atom (Atom.Int 111) ] ] -> ()
  | _ -> Alcotest.fail "param update");
  (* arity errors *)
  (try
     ignore (Db.execute db q [ Atom.Int 17 ]);
     Alcotest.fail "too few"
   with Db.Db_error _ -> ());
  (try
     ignore (Db.execute db q [ Atom.Int 17; Atom.Str "x"; Atom.Int 9 ]);
     Alcotest.fail "too many"
   with Db.Db_error _ -> ());
  (* unbound ? through plain exec is rejected *)
  try
    ignore (Db.exec db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = ?");
    Alcotest.fail "unbound param"
  with Eval.Eval_error _ | Db.Db_error _ -> ()

(* --- symbolic rewriting ----------------------------------------------------- *)

let test_rewrite_folding () =
  let q s = Parser.parse_query_string s in
  (* constant predicate folds away entirely *)
  (match (Rewrite.rewrite_query (q "SELECT x.DNO FROM x IN T WHERE 1 = 1")).Ast.where with
  | None -> ()
  | Some _ -> Alcotest.fail "tautology should fold");
  (* arithmetic folding *)
  (match Rewrite.rewrite_expr (Ast.Binop (Ast.Add, Ast.Const (Atom.Int 2), Ast.Const (Atom.Int 3))) with
  | Ast.Const (Atom.Int 5) -> ()
  | _ -> Alcotest.fail "2+3");
  (* identity elimination *)
  (match Rewrite.rewrite_expr (Ast.Binop (Ast.Mul, Ast.Path { Ast.var = Some "x"; steps = [] }, Ast.Const (Atom.Int 1))) with
  | Ast.Path _ -> ()
  | _ -> Alcotest.fail "x*1");
  (* double negation *)
  let p = Ast.Not (Ast.Not (Ast.Cmp (Ast.Eq, Ast.Const (Atom.Int 1), Ast.Const (Atom.Int 2)))) in
  checkb "NOT NOT (1=2) folds to FALSE" true (Rewrite.is_false (Rewrite.rewrite_pred p))

let test_division_by_zero () =
  let div a b = Ast.Binop (Ast.Div, Ast.Const a, Ast.Const b) in
  (* x/0 must not fold: folding produced Float inf and silenced the
     runtime error *)
  (match Rewrite.rewrite_expr (div (Atom.Int 1) (Atom.Int 0)) with
  | Ast.Binop (Ast.Div, _, _) -> ()
  | _ -> Alcotest.fail "1/0 must stay unfolded");
  (match Rewrite.rewrite_expr (div (Atom.Float 1.) (Atom.Float 0.)) with
  | Ast.Binop (Ast.Div, _, _) -> ()
  | _ -> Alcotest.fail "1.0/0.0 must stay unfolded");
  (* ordinary division still folds *)
  (match Rewrite.rewrite_expr (div (Atom.Int 4) (Atom.Int 2)) with
  | Ast.Const (Atom.Int 2) -> ()
  | _ -> Alcotest.fail "4/2 should fold to 2");
  (match Rewrite.rewrite_expr (div (Atom.Int 5) (Atom.Int 2)) with
  | Ast.Const (Atom.Float 2.5) -> ()
  | _ -> Alcotest.fail "5/2 should fold to 2.5");
  (* and evaluation raises instead of yielding inf *)
  let db = demo_db () in
  List.iter
    (fun sql ->
      try
        ignore (Db.query db sql);
        Alcotest.fail ("should raise: " ^ sql)
      with Eval.Eval_error m -> checkb ("message: " ^ m) true (m = "division by zero"))
    [
      "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO / 0 = 1";
      "SELECT x.DNO FROM x IN DEPARTMENTS WHERE 1 / 0 = 1";
      "SELECT x.BUDGET / (x.DNO - x.DNO) FROM x IN DEPARTMENTS";
    ]

let test_rewrite_quantifier_duality () =
  let q =
    Parser.parse_query_string
      "SELECT x.DNO FROM x IN T WHERE NOT EXISTS y IN x.PROJECTS : y.PNO = 1"
  in
  match (Rewrite.rewrite_query q).Ast.where with
  | Some (Ast.Forall (_, Ast.Cmp (Ast.Ne, _, _))) -> ()
  | _ -> Alcotest.fail "NOT EXISTS should become ALL with negated body"

let test_rewrite_preserves_semantics () =
  (* hand-picked equivalences on the demo data *)
  let db = demo_db () in
  List.iter
    (fun (a, b) ->
      let ra = Db.query db a and rb = Db.query db b in
      checkb (a ^ " == " ^ b) true (Rel.equal ra rb))
    [
      ( "SELECT x.DNO FROM x IN DEPARTMENTS WHERE NOT (x.BUDGET <= 330000)",
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 330000" );
      ( "SELECT x.DNO FROM x IN DEPARTMENTS WHERE NOT EXISTS y IN x.EQUIP : y.TYPE = 'PC'",
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE ALL y IN x.EQUIP : y.TYPE <> 'PC'" );
      ( "SELECT x.DNO FROM x IN DEPARTMENTS WHERE NOT (x.DNO = 314 OR x.DNO = 218)",
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO <> 314 AND x.DNO <> 218" );
      ( "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 100000 + 220000",
        "SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 320000" );
    ]

let prop_rewrite_equivalence =
  (* random predicates over K/V rows: rewritten form answers identically *)
  let gen_pred =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                map (fun k -> Printf.sprintf "t.K = %d" k) (int_bound 9);
                map (fun k -> Printf.sprintf "t.K > %d" k) (int_bound 9);
                map (fun v -> Printf.sprintf "t.V = '%s'" v) (oneofl [ "a"; "b"; "c" ]);
                return "1 = 1";
                return "1 = 2";
              ]
          in
          if n <= 1 then leaf
          else
            oneof
              [
                leaf;
                map (fun p -> "NOT (" ^ p ^ ")") (self (n / 2));
                map2 (fun a b -> "(" ^ a ^ " AND " ^ b ^ ")") (self (n / 2)) (self (n / 2));
                map2 (fun a b -> "(" ^ a ^ " OR " ^ b ^ ")") (self (n / 2)) (self (n / 2));
              ]))
  in
  QCheck.Test.make ~name:"rewrite preserves results (random predicates)" ~count:100
    (QCheck.pair (QCheck.make ~print:Fun.id gen_pred) arb_kv_rows)
    (fun (pred, rows) ->
      let db = db_with_kv rows in
      let sql = "SELECT t.K, t.V FROM t IN T WHERE " ^ pred in
      let q = Parser.parse_query_string sql in
      (* evaluate WITHOUT the rewriter (eval_query directly) ... *)
      let raw = Eval.eval_query (Db.catalog db) [] q in
      (* ... and WITH it (Db.query goes through Eval.run) *)
      let cooked = Db.query db sql in
      Rel.equal raw cooked)

let lang_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_select_equiv; prop_project_equiv; prop_unnest_equiv; prop_rewrite_equivalence ]

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "keywords" `Quick test_lexer_keywords_case;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple roundtrip" `Quick test_parse_simple;
          Alcotest.test_case "star" `Quick test_parse_star_and_nested;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "quantifiers (no colon)" `Quick test_parse_quantifier_without_colon;
          Alcotest.test_case "subquery naming" `Quick test_parse_subquery_naming;
          Alcotest.test_case "subscript" `Quick test_parse_subscript;
          Alcotest.test_case "DDL" `Quick test_parse_ddl;
          Alcotest.test_case "DML" `Quick test_parse_dml;
          Alcotest.test_case "scripts and errors" `Quick test_parse_script_and_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "projection/where" `Quick test_eval_projection_and_where;
          Alcotest.test_case "arithmetic" `Quick test_eval_arithmetic;
          Alcotest.test_case "unqualified attrs" `Quick test_eval_unqualified_attrs;
          Alcotest.test_case "nested ranges" `Quick test_eval_nested_ranges;
          Alcotest.test_case "aggregates" `Quick test_eval_aggregates;
          Alcotest.test_case "order by" `Quick test_eval_order_by;
          Alcotest.test_case "set semantics" `Quick test_eval_distinct_set_semantics;
          Alcotest.test_case "not/or" `Quick test_eval_not_or;
          Alcotest.test_case "contains (scan)" `Quick test_eval_contains_without_index;
          Alcotest.test_case "deep subscript" `Quick test_eval_subscript_deep;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "null semantics" `Quick test_eval_null_semantics;
          Alcotest.test_case "dates and floats" `Quick test_eval_dates_and_floats;
          Alcotest.test_case "bool columns" `Quick test_eval_bool_columns;
          Alcotest.test_case "distinct + order" `Quick test_eval_distinct_explicit;
          Alcotest.test_case "order by expressions" `Quick test_eval_order_by_expressions;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ddl/dml cycle" `Quick test_exec_ddl_dml_cycle;
          Alcotest.test_case "schema violations" `Quick test_exec_schema_violations;
          Alcotest.test_case "plan reporting" `Quick test_plan_reporting;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "index range plan" `Quick test_index_range_plan;
          Alcotest.test_case "subtable update" `Quick test_subtable_update;
          Alcotest.test_case "subtable delete" `Quick test_subtable_delete;
          Alcotest.test_case "alter table" `Quick test_alter_table;
          Alcotest.test_case "alter keeps indexes" `Quick test_alter_keeps_indexes;
          Alcotest.test_case "prepared statements" `Quick test_prepared_statements;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "folding" `Quick test_rewrite_folding;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "quantifier duality" `Quick test_rewrite_quantifier_duality;
          Alcotest.test_case "semantics preserved" `Quick test_rewrite_preserves_semantics;
        ] );
      ("equivalence", lang_props);
    ]
