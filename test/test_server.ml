(* Server tier tests: wire-protocol round trips (property-tested),
   concurrent sessions over real sockets (isolation, no lost updates,
   admission control), and a kill-the-server-mid-commit run that
   recovers through the WAL with group commit enabled. *)

module P = Nf2_server.Protocol
module Client = Nf2_server.Client
module Server = Nf2_server.Server
module Session = Nf2_server.Session
module Metrics = Nf2_server.Metrics
module Db = Nf2.Db
module Wal = Nf2_storage.Wal
module FD = Nf2_storage.Faulty_disk
module Atom = Nf2_model.Atom
module OS = Nf2_storage.Object_store
module Rewrite = Nf2_lang.Rewrite

let checkb msg expected actual = Alcotest.(check bool) msg expected actual
let checki msg expected actual = Alcotest.(check int) msg expected actual

(* --- protocol: round trips ---------------------------------------------- *)

let gen_atom : Atom.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Atom.Int i) int;
        map (fun f -> Atom.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Atom.Str s) (string_size (int_bound 20));
        map (fun b -> Atom.Bool b) bool;
        map (fun d -> Atom.Date d) (int_range (-100000) 100000);
        return Atom.Null;
      ])

let gen_request : P.request QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> P.Query s) (string_size (int_bound 200));
        map (fun s -> P.Prepare s) (string_size (int_bound 200));
        map2
          (fun id params -> P.Execute_prepared { id; params })
          (int_bound 1000)
          (list_size (int_bound 8) gen_atom);
        map (fun l -> P.Repl_handshake { start_lsn = l }) (int_bound 1_000_000);
        map (fun l -> P.Repl_ack { applied_lsn = l }) (int_bound 1_000_000);
        (* %.17g encoding round-trips every finite double exactly *)
        map (fun f -> P.Set_slow_query (Some f)) (float_bound_inclusive 1e6);
        (* decode rejects implausible shard identities, so generate
           only coherent ones: 0 <= shard_id < nshards *)
        (int_range 1 8 >>= fun nshards ->
         map2
           (fun map_version shard_id -> P.Shard_join { map_version; shard_id; nshards })
           (int_bound 1000)
           (int_bound (nshards - 1)));
        map2
          (fun map_version sql -> P.Shard_route { map_version; sql })
          (int_bound 1000)
          (string_size (int_bound 200));
        oneofl
          [
            P.Begin; P.Commit; P.Rollback; P.Ping; P.Metrics; P.Metrics_prom; P.Quit; P.Promote;
            P.Sys_reset; P.Set_slow_query None; P.Shard_map_get;
          ];
      ])

let gen_response : P.response QCheck.Gen.t =
  QCheck.Gen.(
    let str = string_size (int_bound 30) in
    oneof
      [
        (int_range 0 5 >>= fun ncols ->
         map2
           (fun columns rows -> P.Result_table { columns; rows })
           (list_size (return ncols) str)
           (list_size (int_bound 10) (list_size (return ncols) str)));
        map2 (fun affected message -> P.Row_count { affected; message }) (int_bound 10000) str;
        map2 (fun id nparams -> P.Prepared { id; nparams }) (int_bound 1000) (int_bound 20);
        map2 (fun code message -> P.Error { code; message }) str str;
        map (fun s -> P.Metrics_text s) (string_size (int_bound 500));
        map2
          (fun records durable_lsn -> P.Repl_batch { records; durable_lsn })
          (string_size (int_bound 120))
          (int_bound 1_000_000);
        map2
          (fun version shards -> P.Shard_map { version; shards })
          (int_bound 1000)
          (list_size (int_bound 6)
             (map2
                (fun (sh_id, sh_addr) (sh_state, sh_routed, sh_fanout, sh_errors) ->
                  { P.sh_id; sh_addr; sh_state; sh_routed; sh_fanout; sh_errors })
                (pair (int_bound 64) str)
                (quad (oneofl [ "up"; "down"; "replica-reads" ]) (int_bound 10000)
                   (int_bound 10000) (int_bound 10000))));
        oneofl [ P.Pong; P.Bye ];
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode round-trips" ~count:500
    (QCheck.make gen_request)
    (fun r -> P.decode_request (P.encode_request r) = r)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response encode/decode round-trips" ~count:500
    (QCheck.make gen_response)
    (fun r -> P.decode_response (P.encode_response r) = r)

let test_protocol_malformed () =
  let bad f s = try ignore (f s); false with P.Protocol_error _ -> true in
  checkb "empty request payload" true (bad P.decode_request "");
  checkb "unknown request tag" true (bad P.decode_request "\xff");
  checkb "unknown response tag" true (bad P.decode_response "\xfe");
  checkb "trailing bytes" true (bad P.decode_request (P.encode_request P.Ping ^ "x"))

(* Decode must fail *closed*: truncating or corrupting a frame of any
   tag yields a decoded value or [Protocol_error] — never a stray
   exception (Codec error, Invalid_argument) or an implausible-count
   allocation. *)
let fuzz_corpus =
  let reqs =
    [
      P.Query "SELECT x.A FROM x IN T WHERE x.K = 1";
      P.Prepare "SELECT x.A FROM x IN T WHERE x.K = ?";
      P.Execute_prepared { id = 3; params = [ Atom.Int 42; Atom.Str "x"; Atom.Null ] };
      P.Begin;
      P.Commit;
      P.Rollback;
      P.Ping;
      P.Metrics;
      P.Metrics_prom;
      P.Quit;
      P.Repl_handshake { start_lsn = 12345 };
      P.Repl_ack { applied_lsn = 99 };
      P.Promote;
      P.Sys_reset;
      P.Set_slow_query (Some 0.25);
      P.Set_slow_query None;
      P.Shard_join { map_version = 3; shard_id = 1; nshards = 4 };
      P.Shard_route { map_version = 3; sql = "SELECT x.A FROM x IN T WHERE x.K = 1" };
      P.Shard_map_get;
    ]
  in
  let resps =
    [
      P.Result_table { columns = [ "A"; "B" ]; rows = [ [ "1"; "x" ]; [ "2"; "y" ] ] };
      P.Row_count { affected = 7; message = "7 row(s)" };
      P.Prepared { id = 3; nparams = 2 };
      P.Error { code = "42601"; message = "parse error" };
      P.Pong;
      P.Bye;
      P.Metrics_text "requests_query 1\n";
      P.Repl_batch { records = String.init 48 (fun i -> Char.chr (i * 5 mod 256)); durable_lsn = 7 };
      P.Shard_map
        {
          version = 2;
          shards =
            [
              { P.sh_id = 0; sh_addr = "127.0.0.1:7501"; sh_state = "up"; sh_routed = 12; sh_fanout = 4; sh_errors = 0 };
              { P.sh_id = 1; sh_addr = "127.0.0.1:7502"; sh_state = "down"; sh_routed = 3; sh_fanout = 4; sh_errors = 2 };
            ];
        };
    ]
  in
  (List.map P.encode_request reqs, List.map P.encode_response resps)

let test_decode_fuzz () =
  let total = ref 0 in
  let safe what dec s =
    incr total;
    match dec s with
    | _ -> ()
    | exception P.Protocol_error _ -> ()
    | exception e ->
        Alcotest.fail (Printf.sprintf "%s leaked %s on %S" what (Printexc.to_string e) s)
  in
  let hammer what dec frames =
    let prng = Prng.create 1986 in
    List.iter
      (fun s ->
        (* every truncation point *)
        for cut = 0 to String.length s - 1 do
          safe what dec (String.sub s 0 cut)
        done;
        (* random single-byte corruptions *)
        for _ = 1 to 200 do
          let b = Bytes.of_string s in
          Bytes.set b (Prng.int prng (String.length s)) (Char.chr (Prng.int prng 256));
          safe what dec (Bytes.to_string b)
        done;
        (* corruption and truncation combined *)
        for _ = 1 to 100 do
          let b = Bytes.of_string s in
          Bytes.set b (Prng.int prng (String.length s)) (Char.chr (Prng.int prng 256));
          safe what dec (Bytes.sub_string b 0 (Prng.int prng (String.length s)))
        done)
      frames
  in
  let reqs, resps = fuzz_corpus in
  hammer "decode_request" P.decode_request reqs;
  hammer "decode_response" P.decode_response resps;
  checkb "fuzz corpus exercised" true (!total > 1000)

(* --- helpers for socket tests ------------------------------------------- *)

let with_server ?(max_sessions = 16) ?(lock_timeout = 5.0) ?(group_commit = true)
    ?(group_window = 0.001) ?(domains = 0) ?db (f : Server.t -> 'a) : 'a =
  let config =
    {
      Server.default_config with
      Server.port = 0;
      max_sessions;
      lock_timeout;
      group_commit;
      group_window;
      idle_timeout = 0.;
      domains;
    }
  in
  let srv = Server.start ?db config in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let conn (srv : Server.t) = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv)

let query c sql =
  match Client.request c (P.Query sql) with
  | Some r -> r
  | None -> Alcotest.fail ("server hung up on: " ^ sql)

let expect_ok c sql =
  match query c sql with
  | P.Error { code; message } -> Alcotest.fail (Printf.sprintf "%s -> %s %s" sql code message)
  | r -> r

let rows c sql =
  match expect_ok c sql with
  | P.Result_table { rows; _ } -> rows
  | _ -> Alcotest.fail ("expected rows from: " ^ sql)

(* --- basic request/response over a socket ------------------------------- *)

let test_server_basic () =
  with_server (fun srv ->
      let c = conn srv in
      checkb "ping" true (Client.request c P.Ping = Some P.Pong);
      ignore (expect_ok c "CREATE TABLE T (K INT, V TEXT)");
      (match expect_ok c "INSERT INTO T VALUES (1, 'one'), (2, 'two')" with
      | P.Row_count { affected; _ } -> checki "insert count" 2 affected
      | _ -> Alcotest.fail "expected row count");
      checki "select" 2 (List.length (rows c "SELECT * FROM x IN T"));
      (match query c "SELEC nonsense" with
      | P.Error { code; _ } -> Alcotest.(check string) "syntax code" P.err_syntax code
      | _ -> Alcotest.fail "expected syntax error");
      (match Client.request c P.Metrics with
      | Some (P.Metrics_text s) ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          checkb "metrics mention queries" true (contains s "requests_query")
      | _ -> Alcotest.fail "expected metrics text");
      Client.close c)

let test_prepared_over_wire () =
  with_server (fun srv ->
      let c = conn srv in
      ignore (expect_ok c "CREATE TABLE T (K INT, V TEXT)");
      ignore (expect_ok c "INSERT INTO T VALUES (1, 'one'), (2, 'two')");
      let id =
        match Client.request c (P.Prepare "SELECT x.V FROM x IN T WHERE x.K = ?") with
        | Some (P.Prepared { id; nparams }) ->
            checki "nparams" 1 nparams;
            id
        | _ -> Alcotest.fail "prepare failed"
      in
      (match Client.request c (P.Execute_prepared { id; params = [ Atom.Int 2 ] }) with
      | Some (P.Result_table { rows = [ [ cell ] ]; _ }) ->
          Alcotest.(check string) "bound row" "'two'" cell
      | _ -> Alcotest.fail "execute failed");
      (match Client.request c (P.Execute_prepared { id; params = [] }) with
      | Some (P.Error { code; _ }) -> Alcotest.(check string) "arity code" P.err_semantic code
      | _ -> Alcotest.fail "expected arity error");
      Client.close c)

(* --- concurrency: isolation and lost updates ---------------------------- *)

let test_txn_isolation () =
  with_server ~lock_timeout:0.3 (fun srv ->
      let a = conn srv and b = conn srv and c = conn srv in
      ignore (expect_ok a "CREATE TABLE T (K INT, N INT)");
      ignore (expect_ok a "INSERT INTO T VALUES (1, 10)");
      checkb "begin" true (Client.request a P.Begin <> None);
      ignore (expect_ok a "UPDATE T SET N = 99 WHERE K = 1");
      (* b's read does not block behind a's exclusive lock: it runs on
         an MVCC snapshot and sees the last committed state *)
      (match rows b "SELECT x.N FROM x IN T" with
      | [ [ n ] ] -> Alcotest.(check string) "snapshot read sees pre-txn value" "10" n
      | _ -> Alcotest.fail "snapshot reader should not block behind the writer");
      (* a concurrent writer still conflicts: write-write is 2PL *)
      (match query c "UPDATE T SET N = 0 WHERE K = 1" with
      | P.Error { code; _ } -> Alcotest.(check string) "writer lock timeout" P.err_lock_timeout code
      | _ -> Alcotest.fail "second writer should time out while txn holds X lock");
      (match Client.request a P.Commit with
      | Some (P.Row_count _) -> ()
      | r -> Alcotest.fail (Printf.sprintf "commit failed: %s" (match r with Some (P.Error e) -> e.message | _ -> "?")));
      (* after commit the write is visible to b *)
      (match rows b "SELECT x.N FROM x IN T" with
      | [ [ n ] ] -> Alcotest.(check string) "post-commit read" "99" n
      | _ -> Alcotest.fail "expected one row");
      Client.close a;
      Client.close b;
      Client.close c)

let test_rollback_over_wire () =
  with_server (fun srv ->
      let c = conn srv in
      ignore (expect_ok c "CREATE TABLE T (K INT)");
      ignore (expect_ok c "INSERT INTO T VALUES (1)");
      ignore (Client.request c P.Begin);
      ignore (expect_ok c "INSERT INTO T VALUES (2)");
      ignore (Client.request c P.Rollback);
      checki "rollback undid the insert" 1 (List.length (rows c "SELECT * FROM x IN T"));
      (match Client.request c P.Commit with
      | Some (P.Error { code; _ }) -> Alcotest.(check string) "commit outside txn" P.err_txn_state code
      | _ -> Alcotest.fail "COMMIT without BEGIN should fail");
      Client.close c)

let test_no_lost_updates () =
  with_server ~lock_timeout:10. (fun srv ->
      let c0 = conn srv in
      ignore (expect_ok c0 "CREATE TABLE C (K INT, N INT)");
      ignore (expect_ok c0 "INSERT INTO C VALUES (1, 0)");
      Client.close c0;
      let nthreads = 4 and per_thread = 8 in
      let failures = Atomic.make 0 in
      let worker () =
        let c = conn srv in
        for _ = 1 to per_thread do
          match query c "UPDATE C SET N = N + 1 WHERE K = 1" with
          | P.Row_count _ -> ()
          | _ -> Atomic.incr failures
        done;
        Client.close c
      in
      let threads = List.init nthreads (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      checki "no failed increments" 0 (Atomic.get failures);
      let c = conn srv in
      (match rows c "SELECT x.N FROM x IN C" with
      | [ [ n ] ] -> Alcotest.(check string) "all increments applied" (string_of_int (nthreads * per_thread)) n
      | _ -> Alcotest.fail "expected one row");
      Client.close c;
      (* concurrent autocommit writers should have shared at least one
         group-commit fsync *)
      match Db.wal (Server.db srv) with
      | Some w ->
          let s = Wal.stats w in
          checkb "group commit engaged" true (s.Wal.group_commit_batches > 0);
          checkb "batches cover all commits" true
            (s.Wal.group_commit_txns >= s.Wal.group_commit_batches)
      | None -> Alcotest.fail "server db should have a WAL")

let test_admission_control () =
  with_server ~max_sessions:2 (fun srv ->
      let a = conn srv and b = conn srv in
      checkb "a admitted" true (Client.request a P.Ping = Some P.Pong);
      checkb "b admitted" true (Client.request b P.Ping = Some P.Pong);
      let c = conn srv in
      (match Client.request c P.Ping with
      | Some (P.Error { code; _ }) -> Alcotest.(check string) "busy code" P.err_busy code
      | None -> () (* server closed before we read the busy frame: also a rejection *)
      | _ -> Alcotest.fail "third session should be rejected");
      Client.close c;
      Client.close a;
      (* a slot freed: a new connection is admitted again *)
      let rec retry n =
        let d = conn srv in
        match Client.request d P.Ping with
        | Some P.Pong -> Client.close d
        | _ when n > 0 ->
            Client.close d;
            Thread.delay 0.05;
            retry (n - 1)
        | _ -> Alcotest.fail "freed slot should admit a new session"
      in
      retry 20;
      Client.close b)

(* --- parallel reads: torn-read stress, counters, cached rewrites -------- *)

(* Fold the storage gauges into the server's registry and read one. *)
let gauge srv name =
  ignore (Session.render_metrics (Server.session_manager srv));
  Metrics.get (Server.metrics srv) name

(* A writer replaces one NF² object inside explicit transactions while
   reader threads scan its subtable through the lock-free MVCC snapshot
   read path.  Every committed state has [slots] subtable rows sharing
   a single GEN value, so any mixed-GEN or wrong-cardinality result is
   a torn read.  The counters must prove the path is truly lock-free:
   across the whole run the readers acquire zero predicate locks and
   zero shared engine-latch grants, and their scans perform zero
   object-store reads — a snapshot serves only frozen version chains. *)
let test_concurrent_read_stress () =
  (* domains:2 forces cross-domain dispatch even on a 1-core host *)
  with_server ~domains:2 ~lock_timeout:10. (fun srv ->
      let c0 = conn srv in
      let slots = 8 in
      ignore (expect_ok c0 "CREATE TABLE G (ID INT, XS TABLE (GEN INT, SLOT INT))");
      let subtable g =
        "{" ^ String.concat ", " (List.init slots (Printf.sprintf "(%d, %d)" g)) ^ "}"
      in
      ignore (expect_ok c0 (Printf.sprintf "INSERT INTO G VALUES (1, %s)" (subtable 0)));
      let shared_locks0 = gauge srv "lock_shared_acquired" in
      let read_grants0 = gauge srv "engine_read_grants" in
      let snapshot_reads0 = gauge srv "snapshot_reads" in
      let torn = Atomic.make 0 and read_errors = Atomic.make 0 and write_errors = Atomic.make 0 in
      let writer () =
        let c = conn srv in
        for g = 1 to 15 do
          let step req ok =
            match Client.request c req with
            | Some r when ok r -> ()
            | _ -> Atomic.incr write_errors
          in
          let dml = function P.Row_count _ -> true | _ -> false in
          step P.Begin dml;
          step (P.Query "DELETE FROM G WHERE ID = 1") dml;
          step (P.Query (Printf.sprintf "INSERT INTO G VALUES (1, %s)" (subtable g))) dml;
          step P.Commit dml
        done;
        Client.close c
      in
      let reader () =
        let c = conn srv in
        for _ = 1 to 20 do
          (* GEN alone would dedupe to one row (set semantics); SLOT
             keeps the 8 rows distinct so cardinality is checkable *)
          match
            Client.request c (P.Query "SELECT x.GEN, x.SLOT FROM t IN G, x IN t.XS WHERE t.ID = 1")
          with
          | Some (P.Result_table { rows; _ }) -> (
              match List.map (function [ g; _ ] -> g | _ -> "?") rows with
              | g0 :: rest when List.length rest = slots - 1 && List.for_all (String.equal g0) rest
                -> ()
              | _ -> Atomic.incr torn)
          | _ -> Atomic.incr read_errors
        done;
        Client.close c
      in
      let threads = Thread.create writer () :: List.init 4 (fun _ -> Thread.create reader ()) in
      List.iter Thread.join threads;
      checki "no write errors" 0 (Atomic.get write_errors);
      checki "no read errors" 0 (Atomic.get read_errors);
      checki "no torn subtable reads" 0 (Atomic.get torn);
      (* the 4 x 20 stress reads all went through the snapshot path and
         acquired nothing: no predicate locks, no shared latch grants *)
      checkb "stress reads were snapshot reads" true (gauge srv "snapshot_reads" - snapshot_reads0 >= 80);
      checki "readers acquired zero predicate locks" shared_locks0 (gauge srv "lock_shared_acquired");
      checki "readers took zero shared engine-latch grants" read_grants0 (gauge srv "engine_read_grants");
      (* counter reconciliation: a snapshot scan serves frozen version
         chains, so R readers x Q scans perform exactly zero
         object-store reads while still returning every row *)
      let store = Db.table_store (Server.db srv) ~table:"G" in
      let scan c =
        match Client.request c (P.Query "SELECT x.GEN, x.SLOT FROM t IN G, x IN t.XS") with
        | Some (P.Result_table { rows; _ }) -> List.length rows
        | _ -> -1
      in
      OS.reset_stats store;
      let readers = 4 and scans = 5 in
      let bad = Atomic.make 0 in
      let rthreads =
        List.init readers (fun _ ->
            Thread.create
              (fun () ->
                let c = conn srv in
                for _ = 1 to scans do
                  if scan c <> slots then Atomic.incr bad
                done;
                Client.close c)
              ())
      in
      List.iter Thread.join rthreads;
      checki "all reconciliation scans returned the object" 0 (Atomic.get bad);
      let total = OS.stats store in
      checki "md_reads reconcile to zero" 0 total.OS.md_reads;
      checki "data_reads reconcile to zero" 0 total.OS.data_reads;
      checki "reads performed no subtuple writes" 0 total.OS.subtuple_writes;
      Client.close c0)

(* Preparing a statement rewrites it once; executions reuse the cached
   rewrite instead of re-running the rewriter per call. *)
let test_prepared_rewrite_once () =
  with_server (fun srv ->
      let c = conn srv in
      ignore (expect_ok c "CREATE TABLE T (K INT, V TEXT)");
      ignore (expect_ok c "INSERT INTO T VALUES (1, 'one'), (2, 'two')");
      let before = Rewrite.rewrite_count () in
      let id =
        match Client.request c (P.Prepare "SELECT x.V FROM x IN T WHERE x.K = ?") with
        | Some (P.Prepared { id; _ }) -> id
        | _ -> Alcotest.fail "prepare failed"
      in
      checki "prepare rewrites exactly once" 1 (Rewrite.rewrite_count () - before);
      for i = 1 to 3 do
        match Client.request c (P.Execute_prepared { id; params = [ Atom.Int (1 + (i mod 2)) ] }) with
        | Some (P.Result_table { rows = [ [ _ ] ]; _ }) -> ()
        | _ -> Alcotest.fail "execute failed"
      done;
      checki "executions reuse the cached rewrite" 1 (Rewrite.rewrite_count () - before);
      Client.close c)

let test_prometheus_read_gauges () =
  with_server (fun srv ->
      let c = conn srv in
      ignore (expect_ok c "CREATE TABLE T (K INT)");
      ignore (expect_ok c "INSERT INTO T VALUES (1)");
      checki "read row" 1 (List.length (rows c "SELECT x.K FROM x IN T"));
      let text =
        match Client.request c P.Metrics_prom with
        | Some (P.Metrics_text s) -> s
        | _ -> Alcotest.fail "expected prometheus text"
      in
      let contains needle =
        let nh = String.length text and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
        go 0
      in
      checkb "engine_readers_active exposed" true (contains "engine_readers_active");
      checkb "lock_shared_acquired exposed" true (contains "lock_shared_acquired");
      (* the SELECT above ran on an MVCC snapshot: no shared lock *)
      checkb "no shared grants under MVCC" true (contains "lock_shared_acquired 0\n");
      checkb "snapshot_reads counted" true (contains "snapshot_reads 1\n");
      checkb "mvcc_snapshot_lsn exposed" true (contains "mvcc_snapshot_lsn");
      checkb "snapshot lsn advanced" false (contains "mvcc_snapshot_lsn 0\n");
      checkb "mvcc_versions_live exposed" true (contains "mvcc_versions_live");
      checkb "mvcc_gc_reclaimed exposed" true (contains "mvcc_gc_reclaimed");
      Client.close c)

(* An ASOF below the version-GC horizon maps to the typed SQLSTATE on
   the wire instead of silently answering from a younger state. *)
let test_snapshot_too_old_over_wire () =
  with_server (fun srv ->
      let c = conn srv in
      ignore (expect_ok c "CREATE TABLE T (K INT)");
      Db.set_mvcc_retain (Server.db srv) 1;
      let early = Db.current_snapshot_lsn (Server.db srv) in
      for i = 1 to 10 do
        ignore (expect_ok c (Printf.sprintf "INSERT INTO T VALUES (%d)" i))
      done;
      (match query c (Printf.sprintf "SELECT x.K FROM x IN T ASOF %d" early) with
      | P.Error { code; message } ->
          Alcotest.(check string) "snapshot-too-old code" P.err_snapshot_too_old code;
          checkb "message names the horizon" true
            (let has needle =
               let nh = String.length message and nn = String.length needle in
               let rec go i = i + nn <= nh && (String.sub message i nn = needle || go (i + 1)) in
               go 0
             in
             has "snapshot too old" && has "GC horizon")
      | _ -> Alcotest.fail "expected snapshot-too-old error");
      (* recent LSNs still answer *)
      checki "recent ASOF rows" 10
        (List.length
           (rows c (Printf.sprintf "SELECT x.K FROM x IN T ASOF %d" (Db.current_snapshot_lsn (Server.db srv)))));
      Client.close c)

(* --- crash during concurrent commits ------------------------------------ *)

(* Kill the "machine" at the k-th WAL fsync while several sessions
   insert concurrently under group commit, then recover from the
   surviving image.  Per session, the recovered rows must be a prefix
   of that session's insert order: commits are appended in order, so
   durability may cut a suffix but never punch a hole. *)
let test_crash_mid_commit_recovers () =
  let db = Db.create ~wal:true () in
  with_server ~db ~lock_timeout:10. (fun srv ->
      let c0 = conn srv in
      ignore (expect_ok c0 "CREATE TABLE K (T INT, I INT)");
      Client.close c0;
      let fd = FD.arm ~wal:(Option.get (Db.wal db)) (Db.disk db) (FD.Crash_at_sync 4) in
      let nthreads = 4 and per_thread = 25 in
      let worker t () =
        let c = conn srv in
        (try
           let i = ref 0 in
           let continue = ref true in
           while !continue && !i < per_thread do
             (match query c (Printf.sprintf "INSERT INTO K VALUES (%d, %d)" t !i) with
             | P.Row_count _ -> incr i
             | P.Error _ -> continue := false
             | _ -> continue := false);
             ()
           done
         with _ -> ());
        try Client.close c with _ -> ()
      in
      let threads = List.init nthreads (fun t -> Thread.create (worker t) ()) in
      List.iter Thread.join threads;
      checkb "fault fired" true (FD.fired fd);
      FD.disarm fd);
  (* the server is stopped; recover from the crash image *)
  let img = Db.crash_image db in
  let recovered = Db.recover_from_image img in
  let rel = Db.query recovered "SELECT x.T, x.I FROM x IN K" in
  let by_thread = Hashtbl.create 4 in
  List.iter
    (fun tup ->
      match tup with
      | [ Nf2_model.Value.Atom (Atom.Int t); Nf2_model.Value.Atom (Atom.Int i) ] ->
          Hashtbl.replace by_thread t (i :: Option.value (Hashtbl.find_opt by_thread t) ~default:[])
      | _ -> Alcotest.fail "unexpected row shape")
    (Nf2_algebra.Rel.tuples rel);
  Hashtbl.iter
    (fun t is ->
      let sorted = List.sort compare is in
      let expected = List.init (List.length sorted) Fun.id in
      checkb
        (Printf.sprintf "thread %d rows form a prefix (got %s)" t
           (String.concat "," (List.map string_of_int sorted)))
        true (sorted = expected))
    by_thread

let props = List.map QCheck_alcotest.to_alcotest [ prop_request_roundtrip; prop_response_roundtrip ]

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        Alcotest.test_case "malformed payloads" `Quick test_protocol_malformed
        :: Alcotest.test_case "truncation/corruption fuzz" `Quick test_decode_fuzz
        :: props );
      ( "sessions",
        [
          Alcotest.test_case "basic round trips" `Quick test_server_basic;
          Alcotest.test_case "prepared statements" `Quick test_prepared_over_wire;
          Alcotest.test_case "transaction isolation" `Quick test_txn_isolation;
          Alcotest.test_case "rollback" `Quick test_rollback_over_wire;
          Alcotest.test_case "no lost updates" `Quick test_no_lost_updates;
          Alcotest.test_case "admission control" `Quick test_admission_control;
        ] );
      ( "parallel reads",
        [
          Alcotest.test_case "concurrent read stress" `Quick test_concurrent_read_stress;
          Alcotest.test_case "prepared rewrite cached" `Quick test_prepared_rewrite_once;
          Alcotest.test_case "prometheus read gauges" `Quick test_prometheus_read_gauges;
          Alcotest.test_case "snapshot too old on the wire" `Quick test_snapshot_too_old_over_wire;
        ] );
      ( "crash",
        [ Alcotest.test_case "crash mid-commit recovers" `Quick test_crash_mid_commit_recovers ] );
    ]
