(* Observability tests: the metrics registry's bucket math and
   Prometheus exposition, the trace tree's accumulation semantics, and
   EXPLAIN ANALYZE end-to-end — including that the per-query counter
   deltas agree with the buffer pool's own stats. *)

module Metrics = Nf2_server.Metrics
module Session = Nf2_server.Session
module P = Nf2_server.Protocol
module Trace = Nf2_obs.Trace
module Db = Nf2.Db
module BP = Nf2_storage.Buffer_pool
module Ast = Nf2_lang.Ast
module Parser = Nf2_lang.Parser
module Rel = Nf2_algebra.Rel

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- metrics: bucket math ------------------------------------------------ *)

(* Buckets are factor-2 from 1µs; an observation must land in the first
   bucket whose upper bound covers it, exactly at the boundary too. *)
let test_bucket_boundaries () =
  let m = Metrics.create () in
  (* exactly 1µs -> bucket 0; just over -> bucket 1; 2µs -> bucket 1;
     4µs boundary -> bucket 2; far over the top -> last bucket *)
  Metrics.observe m "lat" 1e-6;
  Metrics.observe m "lat" 1.1e-6;
  Metrics.observe m "lat" 2e-6;
  Metrics.observe m "lat" 4e-6;
  Metrics.observe m "lat" 1e9;
  let _, hists = Metrics.dump m in
  let h = List.assoc "lat" hists in
  Alcotest.(check int) "bucket 0 (<=1us)" 1 h.Metrics.counts.(0);
  Alcotest.(check int) "bucket 1 (<=2us)" 2 h.Metrics.counts.(1);
  Alcotest.(check int) "bucket 2 (<=4us)" 1 h.Metrics.counts.(2);
  Alcotest.(check int) "overflow bucket" 1 h.Metrics.counts.(Array.length h.Metrics.counts - 1);
  Alcotest.(check int) "total" 5 h.Metrics.total

let test_dump_bounds () =
  let m = Metrics.create () in
  Metrics.observe m "lat" 0.001;
  let _, hists = Metrics.dump m in
  let h = List.assoc "lat" hists in
  let n = Array.length h.Metrics.bounds in
  Alcotest.(check int) "bounds/counts same length" n (Array.length h.Metrics.counts);
  Alcotest.(check (float 0.)) "first bound is 1us" 1e-6 h.Metrics.bounds.(0);
  Alcotest.(check bool) "last bound is +inf" true (h.Metrics.bounds.(n - 1) = Float.infinity);
  for i = 0 to n - 2 do
    if not (h.Metrics.bounds.(i) < h.Metrics.bounds.(i + 1)) then
      Alcotest.failf "bounds not strictly increasing at %d" i
  done;
  Alcotest.(check (float 1e-12)) "sum" 0.001 h.Metrics.sum

let test_empty_percentile () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.)) "p50 of nothing" 0. (Metrics.percentile m "nope" 0.5);
  Alcotest.(check int) "count of nothing" 0 (Metrics.count m "nope");
  (* an observed histogram reports the matching bucket's upper bound *)
  Metrics.observe m "lat" 1.5e-6;
  Alcotest.(check (float 1e-12)) "p50 = bucket bound" 2e-6 (Metrics.percentile m "lat" 0.5)

let test_concurrent_observe () =
  let m = Metrics.create () in
  let per_thread = 1000 in
  let body () =
    for i = 1 to per_thread do
      Metrics.observe m "lat" (Float.of_int i *. 1e-6);
      Metrics.incr m "ops"
    done
  in
  let threads = List.init 8 (fun _ -> Thread.create body ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "all observations counted" (8 * per_thread) (Metrics.count m "lat");
  Alcotest.(check int) "all increments counted" (8 * per_thread) (Metrics.get m "ops");
  let _, hists = Metrics.dump m in
  let h = List.assoc "lat" hists in
  Alcotest.(check int) "bucket sum = total" (8 * per_thread) (Array.fold_left ( + ) 0 h.Metrics.counts)

let test_render_deterministic () =
  let build () =
    let m = Metrics.create () in
    Metrics.incr m "zeta";
    Metrics.add m "alpha" 3;
    Metrics.incr_labeled m "reqs" [ ("kind", "q") ];
    Metrics.observe m "lat" 0.002;
    m
  in
  let a = Metrics.render (build ()) and b = Metrics.render (build ()) in
  Alcotest.(check string) "same registry renders identically" a b;
  (* sorted: the alpha line precedes the zeta line *)
  (match String.split_on_char '\n' a with
  | first :: _ -> Alcotest.(check bool) "names sorted" true (contains first "alpha")
  | [] -> Alcotest.fail "empty render")

(* --- metrics: Prometheus exposition -------------------------------------- *)

(* Every non-comment line must be `name{labels} value`. *)
let prom_line_ok line =
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = ':'
  in
  match String.index_opt line ' ' with
  | None -> false
  | Some sp -> (
      let key = String.sub line 0 sp in
      let value = String.sub line (sp + 1) (String.length line - sp - 1) in
      let name_ok name =
        String.length name > 0
        && String.for_all is_name_char name
        && not (name.[0] >= '0' && name.[0] <= '9')
      in
      let key_ok =
        match String.index_opt key '{' with
        | Some i -> key.[String.length key - 1] = '}' && name_ok (String.sub key 0 i)
        | None -> name_ok key
      in
      key_ok && match float_of_string_opt value with Some v -> not (Float.is_nan v) | None -> false)

let test_prometheus_format () =
  let m = Metrics.create () in
  Metrics.incr m "requests_query";
  Metrics.set m "pool_hits" 42;
  Metrics.incr_labeled m "stmts" [ ("kind", "select") ];
  Metrics.incr_labeled m "stmts" [ ("kind", "insert") ];
  Metrics.observe m "query_latency" 0.0005;
  let out = Metrics.render_prometheus m in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' && not (prom_line_ok line) then
        Alcotest.failf "bad exposition line: %s" line)
    (String.split_on_char '\n' out);
  Alcotest.(check bool) "namespaced" true (contains out "aimii_requests_query 1");
  Alcotest.(check bool) "labeled series" true (contains out "aimii_stmts{kind=\"select\"} 1");
  Alcotest.(check bool) "histogram type" true (contains out "# TYPE aimii_query_latency_seconds histogram");
  Alcotest.(check bool) "+Inf bucket" true (contains out "le=\"+Inf\"} 1");
  Alcotest.(check bool) "count line" true (contains out "aimii_query_latency_seconds_count 1");
  (* same label set in any order hits the same series *)
  Metrics.add_labeled m "err" [ ("a", "1"); ("b", "2") ] 1;
  Metrics.add_labeled m "err" [ ("b", "2"); ("a", "1") ] 1;
  Alcotest.(check int) "canonical label order" 2 (Metrics.get_labeled m "err" [ ("a", "1"); ("b", "2") ])

(* Label values carrying the three characters the exposition format
   escapes (backslash, double quote, newline) must come out
   backslash-doubled / backslash-quoted / backslash-n — and nothing
   else may be rewritten (regression: the old printf %S escaping
   emitted OCaml escapes such as backslash-034). *)
let test_prometheus_label_escaping () =
  Alcotest.(check string) "backslash" {|a\\b|} (Metrics.escape_label_value {|a\b|});
  Alcotest.(check string) "quote" {|say \"hi\"|} (Metrics.escape_label_value {|say "hi"|});
  Alcotest.(check string) "newline" {|l1\nl2|} (Metrics.escape_label_value "l1\nl2");
  Alcotest.(check string) "untouched" "tab\t ünï'" (Metrics.escape_label_value "tab\t ünï'");
  let m = Metrics.create () in
  Metrics.incr_labeled m "q" [ ("stmt", "SELECT \"x\\y\"\nFROM t") ];
  Metrics.set_float_labeled m "build_info" [ ("version", "0.9\"\\") ] 1.;
  let out = Metrics.render_prometheus m in
  Alcotest.(check bool) "counter series escaped" true
    (contains out {|aimii_q{stmt="SELECT \"x\\y\"\nFROM t"} 1|});
  Alcotest.(check bool) "gauge series escaped" true
    (contains out {|aimii_build_info{version="0.9\"\\"} 1|});
  (* a raw newline surviving into the exposition would tear a sample
     into a continuation line starting with neither '#' nor the
     namespace prefix *)
  List.iter
    (fun line ->
      if
        String.length line > 0
        && line.[0] <> '#'
        && not (String.length line >= 6 && String.sub line 0 6 = "aimii_")
      then Alcotest.failf "torn exposition line: %s" line)
    (String.split_on_char '\n' out)

(* --- trace tree ---------------------------------------------------------- *)

let test_trace_accumulation () =
  let tr = Trace.create ~label:"stmt" () in
  let fake = ref 0 in
  Trace.add_source tr (fun () -> [ ("fake.counter", !fake) ]);
  let root = Trace.root tr in
  let op = Trace.child root "scan T" in
  (* two activations of the same (parent, label) accumulate in one node *)
  Trace.timed tr op (fun () -> fake := !fake + 3);
  Trace.timed tr op (fun () -> fake := !fake + 4);
  Trace.add_rows op 10;
  Alcotest.(check int) "calls" 2 op.Trace.calls;
  Alcotest.(check int) "rows" 10 op.Trace.rows;
  Alcotest.(check int) "counter delta accumulated" 7 (List.assoc "fake.counter" op.Trace.counters);
  Alcotest.(check bool) "same child node reused" true (Trace.child root "scan T" == op);
  (* a failing section still charges its node *)
  (try Trace.timed tr op (fun () -> fake := !fake + 1; failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "exn path counted" 3 op.Trace.calls;
  Alcotest.(check int) "exn path delta" 8 (List.assoc "fake.counter" op.Trace.counters);
  (match Trace.find tr "scan T" with
  | Some n -> Alcotest.(check bool) "find locates node" true (n == op)
  | None -> Alcotest.fail "find missed the node");
  let r = Trace.render tr in
  Alcotest.(check bool) "render shows node" true (contains r "scan T");
  Alcotest.(check bool) "render shows delta" true (contains r "fake.counter=+8");
  Alcotest.(check bool) "compact one line" true
    (not (contains (Trace.render_compact tr) "\n"))

(* --- EXPLAIN ANALYZE ------------------------------------------------------ *)

let nested_query =
  "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : EXISTS z IN y.MEMBERS : \
   z.FUNCTION = 'Consultant'"

let test_explain_analyze_roundtrip () =
  let stmt = Parser.parse_one ("EXPLAIN ANALYZE " ^ nested_query) in
  (match stmt with
  | Ast.Explain_analyze _ -> ()
  | _ -> Alcotest.fail "expected Explain_analyze");
  let printed = Ast.stmt_to_string stmt in
  Alcotest.(check bool) "printer keeps ANALYZE" true (contains printed "EXPLAIN ANALYZE ");
  Alcotest.(check bool) "reparse agrees" true (Parser.parse_one printed = stmt)

(* The trace's per-query pool counters must be exactly the buffer
   pool's own stats delta across the statement. *)
let test_trace_matches_pool_stats () =
  let db = Db.create () in
  Nf2.Demo.load db;
  let q = Parser.parse_query_string nested_query in
  (* BP.stats aggregates a snapshot across partitions: take one before
     and one after and compare deltas *)
  let s = BP.stats (Db.pool db) in
  let before_hits = s.BP.hits and before_misses = s.BP.misses in
  let tr = Db.new_trace db in
  let rel =
    match Db.exec_stmt ~trace:tr db (Ast.Select q) with
    | Db.Rows rel -> rel
    | Db.Msg m -> Alcotest.failf "expected rows, got %s" m
  in
  Alcotest.(check bool) "query returned rows" true (Rel.cardinality rel > 0);
  let node =
    match Trace.find tr "query" with Some n -> n | None -> Alcotest.fail "no query span"
  in
  let counter name = Option.value ~default:0 (List.assoc_opt name node.Trace.counters) in
  let hits = counter "pool.hits" and misses = counter "pool.misses" in
  Alcotest.(check bool) "pool activity traced" true (hits + misses > 0);
  let s' = BP.stats (Db.pool db) in
  Alcotest.(check int) "hits delta matches pool stats" (s'.BP.hits - before_hits) hits;
  Alcotest.(check int) "misses delta matches pool stats" (s'.BP.misses - before_misses) misses;
  (match Trace.find tr "scan DEPARTMENTS" with
  | Some scan -> Alcotest.(check int) "scan rows" 3 scan.Trace.rows
  | None -> Alcotest.fail "no scan span")

let test_explain_analyze_stmt () =
  let db = Db.create () in
  Nf2.Demo.load db;
  match Db.exec db ("EXPLAIN ANALYZE " ^ nested_query) with
  | [ Db.Msg m ] ->
      List.iter
        (fun needle ->
          if not (contains m needle) then Alcotest.failf "EXPLAIN ANALYZE output misses %S:\n%s" needle m)
        [ "plan:"; "trace:"; "scan DEPARTMENTS"; "quantifier EXISTS"; "rows="; "time=";
          "pool.hits="; "pool.misses="; "wal.bytes="; "result: 2 row(s)" ]
  | _ -> Alcotest.fail "expected a message result"

(* --- planner gauges in the exposition ------------------------------------- *)

(* The access-path counters reach Prometheus through the storage-stat
   fold.  An in-transaction point read runs on the live catalog and
   bumps the index-scan series; a plain (snapshot) read has no index
   paths by design and bumps the seq-scan series; the MVCC byte gauge
   is present. *)
let test_planner_gauges () =
  let db = Db.create () in
  Nf2.Demo.load db;
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (DNO)");
  let mgr = Session.create_manager ~metrics:(Metrics.create ()) db in
  let sess = Session.open_session mgr ~sid:1 in
  ignore (Session.handle sess (P.Query "BEGIN;"));
  (match Session.handle sess (P.Query "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314;") with
  | P.Result_table _ -> ()
  | _ -> Alcotest.fail "indexed read failed");
  ignore (Session.handle sess (P.Query "COMMIT;"));
  (match Session.handle sess (P.Query "SELECT x.DNO FROM x IN DEPARTMENTS;") with
  | P.Result_table _ -> ()
  | _ -> Alcotest.fail "scan read failed");
  Session.close_session sess;
  let out = Session.render_prometheus mgr in
  List.iter
    (fun needle ->
      if not (contains out needle) then Alcotest.failf "exposition misses %S" needle)
    [ "aimii_plan_index_scans 1"; "aimii_plan_seq_scans 1"; "aimii_plan_index_intersections 0";
      "aimii_mvcc_bytes_live" ]

(* --- slow-query log ------------------------------------------------------- *)

let test_slow_query_log () =
  let db = Db.create () in
  Nf2.Demo.load db;
  let lines = ref [] in
  let metrics = Metrics.create () in
  let mgr =
    Session.create_manager ~slow_query:0.0 ~slow_sink:(fun l -> lines := l :: !lines) ~metrics db
  in
  let sess = Session.open_session mgr ~sid:7 in
  (match Session.handle sess (P.Query (nested_query ^ ";")) with
  | P.Result_table { rows; _ } -> Alcotest.(check int) "rows over the wire" 2 (List.length rows)
  | _ -> Alcotest.fail "expected a result table");
  Session.close_session sess;
  match !lines with
  | [ line ] ->
      List.iter
        (fun needle ->
          if not (contains line needle) then Alcotest.failf "slow-query line misses %S:\n%s" needle line)
        [ "slow-query ms="; "sid=7"; "status=ok"; "stmt=\"SELECT"; "trace=["; "scan DEPARTMENTS" ];
      (* a snapshot read acquires no predicate locks, so the trace's
         lock-counter deltas are all zero and stay off the line *)
      Alcotest.(check bool) "no lock activity on a snapshot read" true
        (not (contains line "lock.acquires="));
      Alcotest.(check bool) "one line only" true (not (contains line "\n"));
      Alcotest.(check int) "slow_queries counter" 1 (Metrics.get metrics "slow_queries")
  | ls -> Alcotest.failf "expected exactly one slow-query line, got %d" (List.length ls)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "dump bounds" `Quick test_dump_bounds;
          Alcotest.test_case "empty percentile" `Quick test_empty_percentile;
          Alcotest.test_case "concurrent observe" `Quick test_concurrent_observe;
          Alcotest.test_case "deterministic render" `Quick test_render_deterministic;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "prometheus label escaping" `Quick test_prometheus_label_escaping;
        ] );
      ( "trace",
        [
          Alcotest.test_case "node accumulation" `Quick test_trace_accumulation;
        ] );
      ( "planner gauges",
        [
          Alcotest.test_case "exposition series" `Quick test_planner_gauges;
        ] );
      ( "explain analyze",
        [
          Alcotest.test_case "parser/printer round-trip" `Quick test_explain_analyze_roundtrip;
          Alcotest.test_case "trace matches pool stats" `Quick test_trace_matches_pool_stats;
          Alcotest.test_case "statement output" `Quick test_explain_analyze_stmt;
        ] );
      ( "slow-query log",
        [ Alcotest.test_case "one structured line" `Quick test_slow_query_log ] );
    ]
