(* Crash-consistency tests for the write-ahead log and recovery
   subsystem.

   The core discipline: run a workload of logged transactions against a
   database on a tiny buffer pool (so physical writes happen mid-run),
   kill the simulated machine at an exact physical write via
   [Faulty_disk], recover from what survived (page images + durable log
   prefix), and compare against a committed-prefix oracle — a second
   database that executed only the transactions whose commit became
   durable.  No committed work may be lost, no uncommitted work may
   survive, and Mini-Directory reconstruction must still hold. *)

module Atom = Nf2_model.Atom
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel
module D = Nf2_storage.Disk
module BP = Nf2_storage.Buffer_pool
module OS = Nf2_storage.Object_store
module Wal = Nf2_storage.Wal
module Recovery = Nf2_storage.Recovery
module FD = Nf2_storage.Faulty_disk
module Db = Nf2.Db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- workload ----------------------------------------------------------- *)

(* A multi-page NF² workload: nested subtables, subtable DML, whole-row
   DML.  Each script is one logged transaction. *)
let scripts =
  [
    "CREATE TABLE DEPT (DNO INT, NAME TEXT, BUDGET INT, EQUIP TABLE (QU INT, KIND TEXT))";
    "INSERT INTO DEPT VALUES (1, 'Tooling', 100, {(1, 'DRILL'), (2, 'LATHE')}), (2, 'Assembly', 200, {(3, 'ROBOT')})";
    "INSERT INTO DEPT VALUES (3, 'Paint', 300, {(4, 'SPRAY'), (5, 'OVEN'), (6, 'BOOTH')})";
    "INSERT INTO DEPT VALUES (10, 'Forge and foundry works', 1000, {(10, 'FURNACE'), (11, 'ANVIL'), (12, 'CRUCIBLE'), (13, 'BELLOWS')})";
    "INSERT INTO DEPT VALUES (11, 'Electroplating and finishing', 1100, {(14, 'TANK'), (15, 'RECTIFIER'), (16, 'POLISHER')})";
    "INSERT INTO DEPT VALUES (12, 'Injection moulding', 1200, {(17, 'PRESS'), (18, 'CHILLER'), (19, 'DRYER'), (20, 'HOPPER')})";
    "INSERT INTO DEPT VALUES (13, 'Final inspection', 1300, {(21, 'GAUGE'), (22, 'SCALE')})";
    "UPDATE DEPT SET BUDGET = BUDGET + 50 WHERE DNO = 2";
    "INSERT INTO DEPT.EQUIP WHERE DNO = 1 VALUES (7, 'PRESS'), (8, 'SAW')";
    "INSERT INTO DEPT VALUES (14, 'Shipping and receiving dock', 1400, {(23, 'FORKLIFT'), (24, 'CRANE'), (25, 'PALLETJACK')})";
    "DELETE FROM DEPT.EQUIP WHERE QU = 5";
    "UPDATE DEPT SET NAME = 'Refit' WHERE DNO = 3";
    "INSERT INTO DEPT VALUES (15, 'Research workshop annex', 1500, {(26, 'BENCH'), (27, 'SCOPE'), (28, 'PROBE'), (29, 'JIG')})";
    "DELETE FROM DEPT WHERE DNO = 2";
    "UPDATE DEPT SET BUDGET = BUDGET * 2 WHERE DNO = 12";
    "INSERT INTO DEPT VALUES (4, 'Quality', 400, {})";
  ]

(* Tiny pages and pool so the workload itself causes eviction traffic:
   crash points land in the middle of logical operations. *)
let fresh_wal_db () = Db.create ~page_size:256 ~frames:6 ~wal:true ()

let run_scripts db ss = List.iter (fun s -> ignore (Db.exec db s)) ss

(* --- oracles and invariants --------------------------------------------- *)

let same_state msg (a : Db.t) (b : Db.t) =
  Alcotest.(check (list string)) (msg ^ ": table names") (Db.table_names a) (Db.table_names b);
  List.iter
    (fun name ->
      let q = Printf.sprintf "SELECT * FROM %s" name in
      checkb (Printf.sprintf "%s: %s identical" msg name) true
        (Rel.equal (Db.query a q) (Db.query b q)))
    (Db.table_names a)

(* Mini-Directory invariants: every object reconstructs through its MD
   tree and reports a sane physical footprint. *)
let check_md_invariants msg db =
  List.iter
    (fun name ->
      let store = Db.table_store db ~table:name in
      let schema = Db.table_schema db ~table:name in
      List.iter
        (fun root ->
          ignore (Db.fetch_tuple db ~table:name root);
          let st = OS.md_stats store schema root in
          checkb (msg ^ ": md footprint") true (st.OS.pages >= 1 && st.OS.md_subtuples >= 1))
        (Db.table_roots db ~table:name))
    (Db.table_names db)

(* Oracle: a plain (unlogged) database that executed only the first
   [n] scripts — the committed prefix. *)
let oracle_prefix ss n =
  let db = Db.create () in
  List.iteri (fun i s -> if i < n then ignore (Db.exec db s)) ss;
  db

(* Run [ss] (ending with a checkpoint) against a fresh logged db under
   [plan]; return the crash image and whether the plan fired. *)
let crash_run ss plan =
  let db = fresh_wal_db () in
  let fd = FD.arm ~wal:(Option.get (Db.wal db)) (Db.disk db) plan in
  let crashed =
    try
      run_scripts db ss;
      ignore (Db.wal_checkpoint db);
      false
    with D.Crash _ -> true
  in
  FD.disarm fd;
  (Db.crash_image db, crashed)

(* Transactions whose commit record made it into the durable log.
   ([Recovery.replay]'s own [committed] list only covers the replay
   window, i.e. records after the last checkpoint.) *)
let durable_commits img =
  List.length
    (List.filter
       (fun (_, r) -> match r with Wal.Commit _ -> true | _ -> false)
       (Wal.records_of_string img.Recovery.wal))

(* Recover an image and check it equals the committed-prefix oracle. *)
let check_recovery msg ss img =
  let committed = durable_commits img in
  let recovered = Db.recover_from_image img in
  let oracle = oracle_prefix ss committed in
  same_state msg recovered oracle;
  check_md_invariants msg recovered;
  (committed, recovered)

(* Physical writes of a full fault-free run (the crash-point space). *)
let total_writes ss =
  let db = fresh_wal_db () in
  run_scripts db ss;
  ignore (Db.wal_checkpoint db);
  (D.stats (Db.disk db)).D.writes

(* --- the crash matrix ---------------------------------------------------- *)

(* For K in 0..N physical writes: let K writes succeed, kill the
   machine at the next one, recover, compare to the oracle. *)
let test_crash_matrix () =
  let n = total_writes scripts in
  checkb "workload causes real write traffic" true (n >= 10);
  let fired = ref 0 in
  for k = 0 to n do
    let img, crashed = crash_run scripts (FD.Crash_at_write (k + 1)) in
    if crashed then incr fired;
    let committed, _ =
      check_recovery (Printf.sprintf "crash at write %d" k) scripts img
    in
    (* a completed run must have committed every transaction *)
    if not crashed then checki "all committed" (List.length scripts) committed
  done;
  (* every point but the one past the end must actually crash *)
  checki "matrix covered" n !fired

(* Same sweep with torn writes: the victim page is half old, half new;
   recovery must heal it from the log images. *)
let test_torn_write_matrix () =
  let n = total_writes scripts in
  for k = 1 to n do
    let img, crashed = crash_run scripts (FD.Torn_write k) in
    checkb "torn plan fires" true crashed;
    ignore (check_recovery (Printf.sprintf "torn write %d" k) scripts img)
  done

(* Log fsync failures: commits whose flush died are not durable. *)
let test_sync_failures () =
  for k = 1 to 12 do
    let img, _ = crash_run scripts (FD.Crash_at_sync k) in
    ignore (check_recovery (Printf.sprintf "failed sync %d" k) scripts img);
    let img, _ = crash_run scripts (FD.Torn_sync k) in
    ignore (check_recovery (Printf.sprintf "torn sync %d" k) scripts img)
  done

(* --- randomized differential test ---------------------------------------- *)

(* A seeded random workload of single- and multi-statement transactions
   over a nested table, crashed at a random physical operation; after
   recovery the state must equal the committed-prefix oracle. *)
let random_scripts prng nops =
  let stmt () =
    match Prng.int prng 5 with
    | 0 | 1 ->
        Printf.sprintf "INSERT INTO R VALUES (%d, %d, {(%d), (%d)})" (Prng.int prng 8)
          (Prng.int prng 1000) (Prng.int prng 100) (Prng.int prng 100)
    | 2 ->
        Printf.sprintf "UPDATE R SET V = %d WHERE K = %d" (Prng.int prng 1000)
          (Prng.int prng 8)
    | 3 -> Printf.sprintf "DELETE FROM R WHERE K = %d" (Prng.int prng 8)
    | _ ->
        Printf.sprintf "INSERT INTO R.XS WHERE K = %d VALUES (%d)" (Prng.int prng 8)
          (Prng.int prng 100)
  in
  let script () =
    if Prng.int prng 4 = 0 then stmt () ^ "; " ^ stmt () else stmt ()
  in
  "CREATE TABLE R (K INT, V INT, XS TABLE (X INT))" :: List.init nops (fun _ -> script ())

let test_randomized_crashes () =
  List.iter
    (fun seed ->
      let prng = Prng.create seed in
      let ss = random_scripts prng (8 + Prng.int prng 10) in
      let n = total_writes ss in
      let plan = FD.random_plan prng ~max_writes:n in
      let img, _ = crash_run ss plan in
      ignore
        (check_recovery
           (Printf.sprintf "seed %d (%s)" seed (FD.plan_to_string plan))
           ss img))
    [ 1; 2; 3; 7; 11; 42; 1986; 4096 ]

(* --- WAL-before-data ordering -------------------------------------------- *)

(* No dirty page may reach disk before its log record: strict mode
   raises, default mode forces the log flush — never silent
   reordering. *)
let test_wal_before_data () =
  let disk = D.create ~page_size:256 () in
  let pool = BP.create ~frames:2 disk in
  let w = Wal.create () in
  BP.attach_wal pool w;
  (* dirty two pages, then touch a third to force an eviction *)
  let p1 = BP.alloc pool in
  let p2 = BP.alloc pool in
  let p3 = BP.alloc pool in
  BP.write pool p1 (fun b -> Bytes.set b 0 'x');
  BP.write pool p2 (fun b -> Bytes.set b 0 'y');
  checkb "log records captured but not yet durable" true (Wal.durable_lsn w < Wal.last_lsn w);
  (* strict mode: the eviction must refuse to write the page *)
  BP.set_strict_wal pool true;
  (try
     BP.write pool p3 (fun b -> Bytes.set b 0 'z');
     Alcotest.fail "expected Wal_ordering"
   with BP.Wal_ordering _ -> ());
  checki "nothing reached disk" 0 (D.stats disk).D.writes;
  (* default mode: the same eviction forces the log out first *)
  BP.set_strict_wal pool false;
  BP.write pool p3 (fun b -> Bytes.set b 0 'z');
  checkb "log flushed before data" true ((Wal.stats w).Wal.forced_flushes >= 1);
  checkb "data written after log" true ((D.stats disk).D.writes >= 1);
  checkb "durable mark covers the evicted page" true (Wal.durable_lsn w >= 1);
  (* flush_all obeys the same rule *)
  BP.flush_all pool;
  checkb "all durable" true (Wal.durable_lsn w = Wal.last_lsn w)

(* --- logged transactions at the Db level ---------------------------------- *)

(* ROLLBACK on a WAL database rewinds pages from before-images (not a
   whole-image snapshot) and leaves queries and later crash recovery
   consistent. *)
let test_wal_rollback () =
  let db = fresh_wal_db () in
  run_scripts db scripts;
  let before = oracle_prefix scripts (List.length scripts) in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE DEPT SET BUDGET = 1 WHERE DNO = 1");
  ignore (Db.exec db "DELETE FROM DEPT WHERE DNO = 3");
  ignore (Db.exec db "INSERT INTO DEPT VALUES (9, 'Ghost', 0, {})");
  ignore (Db.exec db "ROLLBACK");
  same_state "after rollback" db before;
  check_md_invariants "after rollback" db;
  (* the rolled-back transaction must not resurface after a crash *)
  let img = Db.crash_image db in
  ignore (check_recovery "crash after rollback" scripts img);
  (* and the database remains writable afterwards *)
  let rows_before = List.length (Rel.tuples (Db.query before "SELECT x.DNO FROM x IN DEPT")) in
  ignore (Db.exec db "INSERT INTO DEPT VALUES (5, 'Post', 1, {})");
  checki "post-rollback insert visible" (rows_before + 1)
    (List.length (Rel.tuples (Db.query db "SELECT x.DNO FROM x IN DEPT")))

(* An uncommitted transaction dies with the machine: recovery must show
   no trace of it, even though its pages may have been flushed. *)
let test_uncommitted_vanishes () =
  let db = fresh_wal_db () in
  run_scripts db scripts;
  ignore (Db.wal_checkpoint db);
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE DEPT SET BUDGET = 777777 WHERE DNO = 1");
  ignore (Db.exec db "INSERT INTO DEPT VALUES (8, 'Doomed', 8, {})");
  (* push the uncommitted changes to disk — WAL forces the log first *)
  BP.flush_all (Db.pool db);
  (* machine dies before COMMIT *)
  let img = Db.crash_image db in
  let recovered = Db.recover_from_image img in
  let oracle = oracle_prefix scripts (List.length scripts) in
  same_state "uncommitted work gone" recovered oracle;
  checki "no doomed row" 0
    (List.length (Rel.tuples (Db.query recovered "SELECT x.DNO FROM x IN DEPT WHERE x.DNO = 8")))

(* Recovery is deterministic: replaying the same image twice yields the
   same database. *)
let test_recovery_deterministic () =
  let img, _ = crash_run scripts (FD.Crash_at_write 7) in
  let a = Db.recover_from_image img in
  let b = Db.recover_from_image img in
  same_state "replay twice" a b

(* --- group-commit edges --------------------------------------------------- *)

(* sync_to with nothing to do: an empty log or an already-durable LSN
   must not fsync at all, and a flush that covers no commit record must
   not count as a group-commit batch. *)
let test_sync_to_empty () =
  let w = Wal.create () in
  Wal.set_group_commit w true;
  Wal.sync_to w 0;
  checki "empty log: no fsync" 0 (Wal.stats w).Wal.flushes;
  let tx = Wal.begin_tx w in
  Wal.commit w ~tx ~payload:None;
  Wal.sync_to w (Wal.last_lsn w);
  checki "one fsync for the commit" 1 (Wal.stats w).Wal.flushes;
  Wal.sync_to w (Wal.last_lsn w);
  checki "already durable: no extra fsync" 1 (Wal.stats w).Wal.flushes;
  checkb "durable" true (Wal.durable_lsn w = Wal.last_lsn w);
  (* a flush with no commit record in it is not a group-commit batch *)
  let lsn = Wal.log_update w ~tx:Wal.system_tx ~page:0 ~off:0 ~before:"" ~after:"x" in
  Wal.sync_to w lsn;
  checkb "update durable" true (Wal.durable_lsn w >= lsn);
  checki "no commit covered, no batch counted" 1 (Wal.stats w).Wal.group_commit_batches

(* The leader's gathering window must cover followers that commit while
   it is open: one fsync makes every one of them durable.  A lone
   pending commit skips the window (see the dedicated test below), so
   two commits are parked up front to guarantee whoever flushes first
   sees company and holds the window open. *)
let test_group_commit_followers () =
  let w = Wal.create () in
  let nfollowers = 3 in
  let arrived = Atomic.make 0 in
  let window () =
    (* leader: hold the window open until every follower's commit
       record is in the tail (bounded, in case of a test bug) *)
    let deadline = Unix.gettimeofday () +. 5. in
    while Atomic.get arrived < nfollowers && Unix.gettimeofday () < deadline do
      Thread.delay 0.001
    done
  in
  Wal.set_group_commit ~window w true;
  let tx0 = Wal.begin_tx w in
  Wal.commit w ~tx:tx0 ~payload:None;
  let tx1 = Wal.begin_tx w in
  Wal.commit w ~tx:tx1 ~payload:None;
  let first_lsn = Wal.last_lsn w in
  let leader = Thread.create (fun () -> Wal.sync_to w first_lsn) () in
  let follower _ =
    Thread.create
      (fun () ->
        let tx = Wal.begin_tx w in
        Wal.commit w ~tx ~payload:None;
        let lsn = Wal.last_lsn w in
        Atomic.incr arrived;
        Wal.sync_to w lsn)
      ()
  in
  let followers = List.init nfollowers follower in
  Thread.join leader;
  List.iter Thread.join followers;
  checkb "everything durable" true (Wal.durable_lsn w = Wal.last_lsn w);
  let s = Wal.stats w in
  checki "one shared fsync" 1 s.Wal.flushes;
  checki "the batch covered every commit" (nfollowers + 2) s.Wal.group_commit_txns

(* Leader crash between append and fsync: the group fsync dies
   persisting nothing, and every committer in the group — the leader
   and the followers parked in the wait — must observe Disk.Crash
   rather than hang or report durability. *)
let test_group_commit_leader_crash () =
  let w = Wal.create () in
  let nthreads = 4 in
  let arrived = Atomic.make 0 in
  let window () =
    let deadline = Unix.gettimeofday () +. 5. in
    while Atomic.get arrived < nthreads && Unix.gettimeofday () < deadline do
      Thread.delay 0.001
    done
  in
  Wal.set_group_commit ~window w true;
  Wal.set_sync_hook w (Some (fun _ -> 0));
  let crashes = Atomic.make 0 in
  let worker _ =
    Thread.create
      (fun () ->
        let tx = Wal.begin_tx w in
        Wal.commit w ~tx ~payload:None;
        let lsn = Wal.last_lsn w in
        Atomic.incr arrived;
        try Wal.sync_to w lsn with D.Crash _ -> Atomic.incr crashes)
      ()
  in
  let threads = List.init nthreads worker in
  List.iter Thread.join threads;
  checki "every committer observed the crash" nthreads (Atomic.get crashes);
  checki "nothing became durable" 0 (Wal.durable_lsn w);
  (* the machine is dead: later durability waits must refuse too *)
  checkb "post-crash sync_to raises" true
    (try
       Wal.sync_to w (Wal.last_lsn w);
       false
     with D.Crash _ -> true);
  checki "the durable prefix reads back empty" 0
    (List.length (Wal.records_of_string (Wal.durable_contents w)))

(* --- async batched appender ----------------------------------------------- *)

(* Concurrent committers drain through the dedicated appender thread:
   every commit is covered by some batch, the appender counters
   populate (mirrored into the group-commit totals the bench derives
   averages from), and everything is durable once the waiters return. *)
let test_appender_batches () =
  let w = Wal.create () in
  Wal.set_group_commit w true;
  Wal.set_async_appender w true;
  checkb "appender reported running" true (Wal.appender_running w);
  let nthreads = 4 and per_thread = 25 in
  let worker _ =
    Thread.create
      (fun () ->
        for _ = 1 to per_thread do
          let tx = Wal.begin_tx w in
          ignore (Wal.log_update w ~tx ~page:0 ~off:0 ~before:"" ~after:"x");
          Wal.commit w ~tx ~payload:None;
          Wal.sync_to w (Wal.last_lsn w)
        done)
      ()
  in
  let threads = List.init nthreads worker in
  List.iter Thread.join threads;
  Wal.set_async_appender w false;
  checkb "appender stopped" true (not (Wal.appender_running w));
  checkb "everything durable" true (Wal.durable_lsn w = Wal.last_lsn w);
  let s = Wal.stats w in
  checki "every commit covered by a batch" (nthreads * per_thread) s.Wal.appender_txns;
  checkb "batches counted" true (s.Wal.appender_batches >= 1);
  checkb "no more batches than commits" true (s.Wal.appender_batches <= nthreads * per_thread);
  checkb "max batch sane" true
    (s.Wal.appender_max_batch >= 1 && s.Wal.appender_max_batch <= nthreads * per_thread);
  checki "appender totals mirror the group-commit totals" s.Wal.appender_txns
    s.Wal.group_commit_txns;
  checkb "one fsync per batch" true (s.Wal.flushes <= s.Wal.appender_batches + 1)

(* Appender crash semantics are the durable-prefix model, unchanged: a
   failed batch fsync kills the machine, every parked committer
   observes Disk.Crash, and the durable prefix — everything fsynced
   before the failure — still parses. *)
let test_appender_crash () =
  let w = Wal.create () in
  Wal.set_group_commit w true;
  Wal.set_async_appender w true;
  (* one commit becomes durable before the device dies *)
  let tx0 = Wal.begin_tx w in
  Wal.commit w ~tx:tx0 ~payload:None;
  Wal.sync_to w (Wal.last_lsn w);
  let survivors = List.length (Wal.records_of_string (Wal.durable_contents w)) in
  checkb "first commit durable" true (survivors > 0);
  (* now every fsync persists nothing *)
  Wal.set_sync_hook w (Some (fun _ -> 0));
  let nthreads = 3 in
  let crashes = Atomic.make 0 in
  let worker _ =
    Thread.create
      (fun () ->
        let tx = Wal.begin_tx w in
        Wal.commit w ~tx ~payload:None;
        try Wal.sync_to w (Wal.last_lsn w) with D.Crash _ -> Atomic.incr crashes)
      ()
  in
  let threads = List.init nthreads worker in
  List.iter Thread.join threads;
  checki "every parked committer observed the crash" nthreads (Atomic.get crashes);
  checkb "appender died with the machine" true (not (Wal.appender_running w));
  checkb "post-crash sync_to raises" true
    (try
       Wal.sync_to w (Wal.last_lsn w);
       false
     with D.Crash _ -> true);
  (* the prefix fsynced before the failure is intact and decodable *)
  checki "durable prefix unchanged by the failed batches" survivors
    (List.length (Wal.records_of_string (Wal.durable_contents w)));
  Wal.set_async_appender w false

(* A lone committer must not pay the gathering pause: with no other
   commit pending, the sync_to leader fsyncs immediately and never
   opens the window — the fix for the 1-client group-commit cliff. *)
let test_group_window_skipped_when_alone () =
  let w = Wal.create () in
  let opened = ref 0 in
  Wal.set_group_commit ~window:(fun () -> incr opened) w true;
  for _ = 1 to 5 do
    let tx = Wal.begin_tx w in
    Wal.commit w ~tx ~payload:None;
    Wal.sync_to w (Wal.last_lsn w)
  done;
  checki "window never opened for a lone committer" 0 !opened;
  checkb "all commits durable" true (Wal.durable_lsn w = Wal.last_lsn w);
  let s = Wal.stats w in
  checki "one fsync per lone commit" 5 s.Wal.flushes;
  checki "five singleton batches" 5 s.Wal.group_commit_batches;
  checki "covering five txns" 5 s.Wal.group_commit_txns

(* WAL stats surface the logging work for the bench harness. *)
let test_wal_stats () =
  let db = fresh_wal_db () in
  run_scripts db scripts;
  let w = Option.get (Db.wal db) in
  let s = Wal.stats w in
  checkb "records" true (s.Wal.records > List.length scripts);
  checkb "bytes" true (s.Wal.bytes > 0);
  checkb "flushes (one per commit)" true (s.Wal.flushes >= List.length scripts);
  let ps = BP.stats (Db.pool db) in
  checkb "pool captured log records" true (ps.BP.log_captures > 0)

let () =
  Alcotest.run "wal"
    [
      ( "crash matrix",
        [
          Alcotest.test_case "crash at every write" `Quick test_crash_matrix;
          Alcotest.test_case "torn write at every write" `Quick test_torn_write_matrix;
          Alcotest.test_case "log fsync failures" `Quick test_sync_failures;
        ] );
      ( "randomized",
        [ Alcotest.test_case "differential oracle" `Quick test_randomized_crashes ] );
      ( "ordering",
        [ Alcotest.test_case "WAL before data" `Quick test_wal_before_data ] );
      ( "group commit",
        [
          Alcotest.test_case "empty batch" `Quick test_sync_to_empty;
          Alcotest.test_case "followers share the leader's fsync" `Quick
            test_group_commit_followers;
          Alcotest.test_case "leader crash releases the group" `Quick
            test_group_commit_leader_crash;
          Alcotest.test_case "lone committer skips the window" `Quick
            test_group_window_skipped_when_alone;
        ] );
      ( "async appender",
        [
          Alcotest.test_case "batch counters" `Quick test_appender_batches;
          Alcotest.test_case "crash releases the waiters" `Quick test_appender_crash;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "rollback via before-images" `Quick test_wal_rollback;
          Alcotest.test_case "uncommitted vanishes" `Quick test_uncommitted_vanishes;
          Alcotest.test_case "recovery deterministic" `Quick test_recovery_deterministic;
          Alcotest.test_case "stats" `Quick test_wal_stats;
        ] );
    ]
