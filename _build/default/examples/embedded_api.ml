(* The embedded application-programming interface of Section 3: "it
   imbeds both DDL and DML statements of the extended NF2 data model
   into a high level programming language.  A DDL/DML pre-compiler ...
   translates the imbedded NF2 statements into subroutine calls [that]
   invoke the AIM-II run-time system."

   In OCaml the pre-compiler becomes [Db.prepare]: the statement is
   parsed once; the host program executes it repeatedly with bound
   parameters — here, a payroll-style sweep over the departments.

   Run with:  dune exec examples/embedded_api.exe *)

module Db = Nf2.Db
module Atom = Nf2_model.Atom
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel

let () =
  let db = Nf2.Demo.create () in

  (* "declare cursor"-style prepared query with two host variables *)
  let members_of =
    Db.prepare db
      "SELECT z.EMPNO, z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS \
       WHERE x.DNO = ? AND y.PNO = ?"
  in
  (* prepared DML: grant a budget raise *)
  let raise_budget = Db.prepare db "UPDATE DEPARTMENTS SET BUDGET = BUDGET + ? WHERE DNO = ?" in

  (* host-language loop over (department, project) pairs *)
  let targets = [ (314, 17); (314, 23); (218, 25); (417, 37) ] in
  List.iter
    (fun (dno, pno) ->
      match Db.execute db members_of [ Atom.Int dno; Atom.Int pno ] with
      | Db.Rows rel ->
          Printf.printf "department %d, project %d: %d member(s)\n" dno pno (Rel.cardinality rel);
          if Rel.cardinality rel >= 4 then begin
            (* big project: the host program decides to raise the budget *)
            ignore (Db.execute db raise_budget [ Atom.Int 10_000; Atom.Int dno ]);
            Printf.printf "  -> budget of %d raised by 10000\n" dno
          end
      | Db.Msg _ -> ())
    targets;

  print_endline "\nfinal budgets:";
  List.iter
    (fun r -> print_string (Db.render_result r))
    (Db.exec db "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ORDER BY DNO")
