(* Ordered tables (lists) and text support: the REPORTS table of the
   paper (Table 6), list subscripting (Example 8), and masked text
   search backed by the word-fragment index (Section 5).

   Run with:  dune exec examples/reports.exe *)

module Db = Nf2.Db

let header title =
  Printf.printf "\n=== %s %s\n" title (String.make (max 0 (66 - String.length title)) '=')

let show db stmt =
  Printf.printf "aim> %s\n" stmt;
  List.iter (fun r -> print_endline (Db.render_result r)) (Db.exec db stmt)

let () =
  let db = Db.create () in

  header "Table 6: REPORTS with an ordered AUTHORS list";
  show db
    "CREATE TABLE REPORTS (REPNO TEXT, AUTHORS LIST (NAME TEXT), TITLE TEXT, \
     DESCRIPTORS TABLE (WORD TEXT, WEIGHT FLOAT))";
  show db
    "INSERT INTO REPORTS VALUES \
     ('0179', <('Jones')>, 'Concurrency and Consistency Control', \
     {('Concurrency Control', 0.6), ('Recovery', 0.3), ('Distribution', 0.1)}), \
     ('0189', <('Abraham'), ('Medley')>, 'Text Editing and String Search', \
     {('Formatting', 0.3), ('Editing', 0.7)}), \
     ('0292', <('Meyer'), ('Bach'), ('Racer')>, 'Branch and Bound Optimization', \
     {('Branch and Bound', 0.6), ('Genetic Collection', 0.4)})";
  show db "SELECT * FROM REPORTS";

  header "Example 8: reports where Jones is the FIRST author";
  show db "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones'";

  header "List order matters: second authors";
  show db "SELECT x.REPNO, x.AUTHORS[2].NAME AS SECOND_AUTHOR FROM x IN REPORTS WHERE x.REPNO = '0292'";

  header "Section 5: masked text search via the word-fragment index";
  show db "CREATE TEXT INDEX ON REPORTS (TITLE)";
  show db
    "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS \
     WHERE x.TITLE CONTAINS '*onsisten*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones'";
  Printf.printf "plan: %s\n" (String.concat "; " (Db.last_plan db));

  header "Descriptors: weighted keywords as a nested relation";
  show db
    "SELECT x.REPNO, d.WORD, d.WEIGHT FROM x IN REPORTS, d IN x.DESCRIPTORS WHERE d.WEIGHT >= 0.5"
