(* The office-automation scenario of Section 2 of the paper: the
   DEPARTMENTS hierarchy (Table 5), its 1NF decomposition (Tables 1-4),
   and the Section 3 example queries, printed as the paper shows them.

   Run with:  dune exec examples/departments.exe *)

module Db = Nf2.Db
module Schema = Nf2_model.Schema
module P = Nf2_workload.Paper_data

let header title =
  Printf.printf "\n=== %s %s\n" title (String.make (max 0 (66 - String.length title)) '=')

let show db stmt =
  Printf.printf "aim> %s\n" stmt;
  List.iter (fun r -> print_endline (Db.render_result r)) (Db.exec db stmt)

let () =
  let db = Nf2.Demo.create () in

  header "Fig 1: the DEPARTMENTS hierarchy (IMS-style segment view)";
  print_string (Schema.render_segment_tree P.departments);

  header "Table 5: the NF2 DEPARTMENTS table";
  show db "SELECT * FROM DEPARTMENTS";

  header "Tables 1-4: the 1NF decomposition needs four flat tables";
  show db "SELECT * FROM DEPARTMENTS_1NF";
  show db "SELECT * FROM PROJECTS_1NF";

  header "Example 4: unnest to a flat table (Table 7)";
  show db
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
     FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS";

  header "...the same against the flat tables needs explicit joins";
  show db
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
     FROM x IN DEPARTMENTS_1NF, y IN PROJECTS_1NF, z IN MEMBERS_1NF \
     WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO";

  header "Example 5: departments using a PC/AT (EXISTS)";
  show db
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
     WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'";

  header "Example 6: departments with only consultants (ALL; empty)";
  show db
    "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
     WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'";

  header "Fig 5: managers by name via a second join";
  show db
    "SELECT x.DNO, m.LNAME, m.FNAME, m.SEX \
     FROM x IN DEPARTMENTS, m IN EMPLOYEES_1NF WHERE x.MGRNO = m.EMPNO";

  header "Section 4.2: indexes with hierarchical addresses";
  show db "CREATE INDEX ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)";
  show db "CREATE INDEX ON DEPARTMENTS (PROJECTS.PNO)";
  show db
    "SELECT x.DNO FROM x IN DEPARTMENTS \
     WHERE EXISTS y IN x.PROJECTS : (y.PNO = 17 AND EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant')";
  Printf.printf "plan: %s\n" (String.concat "; " (Db.last_plan db))
