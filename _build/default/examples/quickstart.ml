(* Quickstart: create a database, define an extended NF2 table, insert
   nested data, and query it — all through the public [Nf2.Db] API.

   Run with:  dune exec examples/quickstart.exe *)

module Db = Nf2.Db

let show db stmt =
  Printf.printf "aim> %s\n" stmt;
  List.iter (fun r -> print_endline (Db.render_result r)) (Db.exec db stmt)

let () =
  let db = Db.create () in

  (* An unordered table with a nested relation: curly braces in the
     paper's notation.  LIST (...) would declare an ordered table. *)
  show db
    "CREATE TABLE ORDERS (ORDERNO INT, CUSTOMER TEXT, ITEMS TABLE (SKU TEXT, QTY INT, PRICE FLOAT))";

  (* Nested literals use { } for relations and < > for lists. *)
  show db
    "INSERT INTO ORDERS VALUES \
     (1, 'Heidelberg Scientific Center', {('disk-pack', 2, 1200.0), ('terminal-3278', 6, 850.0)}), \
     (2, 'Karlsruhe Robotics Lab', {('gripper', 1, 4200.0)})";

  (* Plain selection over top-level attributes. *)
  show db "SELECT x.ORDERNO, x.CUSTOMER FROM x IN ORDERS";

  (* Quantified predicates reach inside the nested relation. *)
  show db "SELECT x.ORDERNO FROM x IN ORDERS WHERE EXISTS i IN x.ITEMS : i.QTY > 4";

  (* Unnesting: one result row per item. *)
  show db "SELECT x.ORDERNO, i.SKU, i.QTY, i.PRICE FROM x IN ORDERS, i IN x.ITEMS";

  (* Aggregates over nested tables. *)
  show db "SELECT x.ORDERNO, COUNT(x.ITEMS) AS LINES, SUM(x.ITEMS.QTY) AS PIECES FROM x IN ORDERS";

  (* Partial update of complex objects: add a line item to order 2. *)
  show db "INSERT INTO ORDERS.ITEMS WHERE ORDERNO = 2 VALUES ('controller', 2, 990.0)";
  show db "SELECT * FROM ORDERS";

  print_endline "quickstart done."
