(* Predicate locking preview: the concurrency-control approach the
   paper cites (/DPS82, DPS83/) for AIM-II's future multi-user version.
   The prototype itself was single-user, so this demo drives the lock
   table directly rather than concurrent sessions.

   Run with:  dune exec examples/concurrency_preview.exe *)

module L = Nf2_lock.Predicate_lock
module Atom = Nf2_model.Atom

let show outcome =
  match outcome with
  | L.Granted -> "granted"
  | L.Blocked holders -> "blocked on txn " ^ String.concat "," (List.map string_of_int holders)
  | L.Deadlock cycle -> "DEADLOCK with txn " ^ String.concat "," (List.map string_of_int cycle)

let () =
  let lt = L.create () in
  let t1 = L.begin_txn lt and t2 = L.begin_txn lt in
  let dept_range lo hi =
    { L.table = "DEPARTMENTS"; restrictions = [ ([ "DNO" ], L.Between (Atom.Int lo, Atom.Int hi)) ] }
  in
  let dept_point d = { L.table = "DEPARTMENTS"; restrictions = [ ([ "DNO" ], L.Eq (Atom.Int d)) ] } in

  Printf.printf "t%d: S-lock DEPARTMENTS(DNO in [300,400])   -> %s\n" t1
    (show (L.acquire lt t1 L.Shared (dept_range 300 400)));
  Printf.printf "t%d: X-lock DEPARTMENTS(DNO = 218)          -> %s   (disjoint: no conflict)\n" t2
    (show (L.acquire lt t2 L.Exclusive (dept_point 218)));
  Printf.printf "t%d: X-lock DEPARTMENTS(DNO = 350)          -> %s   (phantom protection!)\n" t2
    (show (L.acquire lt t2 L.Exclusive (dept_point 350)));
  Printf.printf "t%d: X-lock DEPARTMENTS(DNO = 218)          -> %s   (would close a cycle)\n" t1
    (show (L.acquire lt t1 L.Exclusive (dept_point 218)));
  Printf.printf "t%d commits (two-phase release)\n" t1;
  L.release_all lt t1;
  Printf.printf "t%d: X-lock DEPARTMENTS(DNO = 350) retried  -> %s\n" t2
    (show (L.acquire lt t2 L.Exclusive (dept_point 350)));
  print_endline "\nNote how DNO=350 conflicts with the [300,400] range lock even";
  print_endline "though no department 350 exists: predicate locks subsume the";
  print_endline "phantom problem that physical tuple locks cannot handle."
