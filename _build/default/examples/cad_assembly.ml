(* The CAD/CAM motivation of the paper's introduction: deep assembly
   hierarchies as complex objects, exercised through the *typed* API —
   partial retrieval, partial update, storage statistics under the
   three MD layouts, object check-out (relocation), and tuple names.

   Run with:  dune exec examples/cad_assembly.exe *)

module Db = Nf2.Db
module OS = Nf2_storage.Object_store
module MD = Nf2_storage.Mini_directory
module Atom = Nf2_model.Atom
module Value = Nf2_model.Value
module G = Nf2_workload.Generator

let () =
  let db = Db.create () in
  let schema = G.assemblies_schema in
  Db.register_table db schema
    (G.assemblies ~params:{ G.default_assembly_params with G.assemblies = 3 } ());

  print_endline "=== CAD assemblies as complex objects =================";
  List.iter
    (fun r -> print_endline (Db.render_result r))
    (Db.exec db "SELECT a.ANO, a.NAME, COUNT(a.SUBASSEMBLIES) AS SUBS, a.WEIGHT FROM a IN ASSEMBLIES");

  (* --- partial retrieval: one subassembly without reading the rest --- *)
  let store = Db.table_store db ~table:"ASSEMBLIES" in
  let root = List.hd (Db.table_roots db ~table:"ASSEMBLIES") in
  OS.reset_stats store;
  let sub = OS.fetch_path store schema root [ OS.Attr "SUBASSEMBLIES"; OS.Elem 2 ] in
  let s = OS.stats store in
  Printf.printf "\npartial fetch of subassembly #2: %d MD reads, %d data reads\n" s.OS.md_reads
    s.OS.data_reads;
  Printf.printf "  -> %s\n" (Value.render_v sub);

  (* --- partial update deep inside the object --- *)
  OS.update_atoms store schema root
    [ OS.Attr "SUBASSEMBLIES"; OS.Elem 2; OS.Attr "PARTS"; OS.Elem 0 ]
    [ Atom.Int 90001; Atom.Str "carbon-fibre"; Atom.Int 4 ];
  print_endline "replaced part 0 of subassembly 2 with a carbon-fibre part";

  (* --- storage statistics: Fig 6's three layouts side by side --- *)
  print_endline "\n=== MD layouts (Fig 6) for the same assembly ==========";
  let tup = OS.fetch store schema root in
  List.iter
    (fun layout ->
      let disk = Nf2_storage.Disk.create () in
      let pool = Nf2_storage.Buffer_pool.create ~frames:128 disk in
      let st = OS.create ~layout pool in
      let tid = OS.insert st schema tup in
      let m = OS.md_stats st schema tid in
      Printf.printf "%s: %3d MD subtuples, %5d MD bytes, %3d data subtuples, %d pages\n"
        (MD.layout_name layout) m.OS.md_subtuples m.OS.md_bytes m.OS.data_subtuples m.OS.pages)
    MD.all_layouts;

  (* --- check-out: relocate the object to fresh pages --- *)
  print_endline "\n=== check-out (relocation via the page list) ==========";
  let before = OS.fetch store schema root in
  OS.relocate store root;
  let after = OS.fetch store schema root in
  Printf.printf "object identical after relocation: %b\n" (Value.equal_tuple before after);

  (* --- ship the assembly to a CAD workstation and back --- *)
  print_endline "\n=== check-out to a workstation (page-level transfer) ===";
  let shipped = OS.checkout store root in
  Printf.printf "serialized object: %d bytes (page images + root MD)\n" (String.length shipped);
  let wdisk = Nf2_storage.Disk.create () in
  let wpool = Nf2_storage.Buffer_pool.create ~frames:64 wdisk in
  let workstation = OS.create wpool in
  let wroot = OS.checkin workstation shipped in
  Printf.printf "identical on the workstation: %b\n"
    (Value.equal_tuple (OS.fetch store schema root) (OS.fetch workstation schema wroot));
  (* the engineer edits offline, then the object returns *)
  OS.update_atoms workstation schema wroot
    [ OS.Attr "SUBASSEMBLIES"; OS.Elem 0; OS.Attr "PARTS"; OS.Elem 0 ]
    [ Atom.Int 70001; Atom.Str "titanium"; Atom.Int 2 ];
  let returned = OS.checkin store (OS.checkout workstation wroot) in
  Printf.printf "edited copy checked back in as a new version: %b\n"
    (not (Value.equal_tuple (OS.fetch store schema root) (OS.fetch store schema returned)));

  (* --- tuple names: stable references for the application program --- *)
  print_endline "\n=== tuple names (Section 4.3) ==========================";
  let t_obj = Db.tname_object db ~table:"ASSEMBLIES" root in
  let t_sub = Db.tname_subobject db ~table:"ASSEMBLIES" root [ OS.Attr "SUBASSEMBLIES"; OS.Elem 1 ] in
  let t_tbl = Db.tname_subtable db ~table:"ASSEMBLIES" root [ OS.Attr "SUBASSEMBLIES"; OS.Elem 1; OS.Attr "PARTS" ] in
  Printf.printf "t-name of the assembly:      %s\n" t_obj;
  Printf.printf "t-name of subassembly 1:     %s\n" t_sub;
  Printf.printf "t-name of its PARTS table:   %s\n" t_tbl;
  (match Db.resolve_tname db t_sub with
  | Value.Table { tuples = [ tup ]; _ } ->
      Printf.printf "resolved subassembly 1: %s\n" (Value.render_tuple tup)
  | _ -> ());
  match Db.resolve_tname db t_tbl with
  | Value.Table { tuples; _ } -> Printf.printf "its PARTS table has %d parts\n" (List.length tuples)
  | _ -> ()
