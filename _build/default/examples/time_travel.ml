(* Temporal support (Section 5): a versioned DEPARTMENTS table evolves
   over 1983-1984; ASOF queries reconstruct past states — including the
   paper's own example ("all projects which department 314 has had on
   January 15th, 1984").

   Run with:  dune exec examples/time_travel.exe *)

module Db = Nf2.Db

let show db stmt =
  Printf.printf "aim> %s\n" stmt;
  List.iter (fun r -> print_endline (Db.render_result r)) (Db.exec db stmt)

let () =
  let db = Db.create () in

  show db
    "CREATE TABLE DEPARTMENTS (DNO INT, MGRNO INT, \
     PROJECTS TABLE (PNO INT, PNAME TEXT), BUDGET INT) WITH VERSIONS";

  (* 1983: the department is founded with two projects *)
  show db
    "INSERT INTO DEPARTMENTS VALUES (314, 56194, {(17, 'CGA'), (23, 'HEAP')}, 320000)";

  (* mid-1984: budget raise *)
  show db "UPDATE DEPARTMENTS SET BUDGET = 500000 WHERE DNO = 314 AT DATE '1984-06-01'";

  (* 1985: new manager *)
  show db "UPDATE DEPARTMENTS SET MGRNO = 71349 WHERE DNO = 314 AT DATE '1985-02-01'";

  print_endline "\n--- the paper's ASOF query: projects of 314 on Jan 15th, 1984 ---";
  show db
    "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF DATE '1984-01-15', y IN x.PROJECTS \
     WHERE x.DNO = 314";

  print_endline "--- budget through time ---";
  List.iter
    (fun date ->
      Printf.printf "as of %s:\n" date;
      show db
        (Printf.sprintf
           "SELECT x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS ASOF DATE '%s' WHERE x.DNO = 314" date))
    [ "1984-01-15"; "1984-06-01"; "1985-06-01" ];

  print_endline "--- current state ---";
  show db "SELECT x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314";

  (* deletion is also a temporal event *)
  show db "DELETE FROM DEPARTMENTS WHERE DNO = 314 AT DATE '1986-01-01'";
  print_endline "--- after deletion: the past is still queryable ---";
  show db "SELECT x.DNO FROM x IN DEPARTMENTS";
  show db "SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ASOF DATE '1985-06-01'"
