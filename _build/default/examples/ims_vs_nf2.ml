(* The Section 2 argument of the paper, executable: the DEPARTMENTS
   hierarchy lives once in an IMS-style database (Fig 1) and once as an
   extended NF2 table (Table 5).  Retrieving "the members of project 17
   of department 314" needs a navigational program (GU + GNP calls)
   against IMS, and a single declarative query against AIM-II.

   Run with:  dune exec examples/ims_vs_nf2.exe *)

module Db = Nf2.Db
module Ims = Nf2_baseline.Ims
module Atom = Nf2_model.Atom
module P = Nf2_workload.Paper_data
module D = Nf2_storage.Disk
module BP = Nf2_storage.Buffer_pool

let () =
  print_endline "=== the same hierarchy, twice ==========================";
  print_endline "IMS segments (Fig 1):";
  List.iter
    (fun (name, level, parent) ->
      Printf.printf "  %s%s%s\n" (String.make (level * 4) ' ') name
        (match parent with Some p -> "  (child of " ^ p ^ ")" | None -> ""))
    (Ims.segment_types P.departments);

  let disk = D.create () in
  let pool = BP.create ~frames:64 disk in
  let ims = Ims.load ~organisation:Ims.HDAM pool P.departments P.departments_rows in

  print_endline "\n=== IMS: a navigational program ========================";
  print_endline "  GU  DEPARTMENTS(DNO=314) PROJECTS(PNO=17)";
  print_endline "  GNP MEMBERS  (loop until status <> ok)";
  let c = Ims.open_cursor ims in
  (match
     Ims.get_unique c
       [
         { Ims.seg = "DEPARTMENTS"; tests = [ (0, Atom.Int 314) ] };
         { Ims.seg = "PROJECTS"; tests = [ (0, Atom.Int 17) ] };
       ]
   with
  | Some _ -> Ims.set_parent_level c 1
  | None -> failwith "GU failed");
  let rec loop () =
    match Ims.get_next_within_parent ~segment:"MEMBERS" c with
    | Some s ->
        Printf.printf "  -> %s\n" (String.concat " " (List.map Atom.to_string s.Ims.fields));
        loop ()
    | None -> ()
  in
  loop ();
  Printf.printf "segments fetched during navigation: %d\n" (Ims.reads c);

  print_endline "\n=== AIM-II: one declarative query ======================";
  let db = Nf2.Demo.create () in
  let q =
    "SELECT z.EMPNO, z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS \
     WHERE x.DNO = 314 AND y.PNO = 17"
  in
  Printf.printf "aim> %s\n" q;
  print_string (Nf2_algebra.Rel.render (Db.query db q));

  print_endline "\nSame answer; the NF2 formulation is one statement, needs no";
  print_endline "knowledge of storage order, and is optimisable (indexes, prefix";
  print_endline "joins) — the integration argument of Sections 1-2."
