examples/ims_vs_nf2.ml: List Nf2 Nf2_algebra Nf2_baseline Nf2_model Nf2_storage Nf2_workload Printf String
