examples/quickstart.ml: List Nf2 Printf
