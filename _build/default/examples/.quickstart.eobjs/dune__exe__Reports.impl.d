examples/reports.ml: List Nf2 Printf String
