examples/concurrency_preview.mli:
