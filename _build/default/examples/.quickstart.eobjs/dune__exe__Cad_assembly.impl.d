examples/cad_assembly.ml: List Nf2 Nf2_model Nf2_storage Nf2_workload Printf String
