examples/reports.mli:
