examples/concurrency_preview.ml: List Nf2_lock Nf2_model Printf String
