examples/departments.ml: List Nf2 Nf2_model Nf2_workload Printf String
