examples/embedded_api.mli:
