examples/quickstart.mli:
