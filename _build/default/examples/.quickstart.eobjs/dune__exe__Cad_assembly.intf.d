examples/cad_assembly.mli:
