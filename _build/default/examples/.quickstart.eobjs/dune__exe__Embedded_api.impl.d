examples/embedded_api.ml: List Nf2 Nf2_algebra Nf2_model Printf
