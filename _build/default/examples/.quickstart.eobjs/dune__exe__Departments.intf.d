examples/departments.mli:
