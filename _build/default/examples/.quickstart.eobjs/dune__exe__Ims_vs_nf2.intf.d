examples/ims_vs_nf2.mli:
