examples/time_travel.ml: List Nf2 Printf
