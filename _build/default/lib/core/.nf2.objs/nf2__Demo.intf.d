lib/core/demo.mli: Db Nf2_storage
