lib/core/demo.ml: Db Nf2_workload
