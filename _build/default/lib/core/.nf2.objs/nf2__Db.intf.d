lib/core/db.mli: Nf2_algebra Nf2_lang Nf2_model Nf2_storage
