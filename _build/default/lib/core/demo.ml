(* Loads the paper's example tables (Tables 1-8) into a database —
   shared by the shell's \demo command, the integration tests, and the
   bench harness. *)

module P = Nf2_workload.Paper_data

let load (db : Db.t) =
  Db.register_table db P.departments P.departments_rows;
  Db.register_table db P.departments_1nf P.departments_1nf_rows;
  Db.register_table db P.projects_1nf P.projects_1nf_rows;
  Db.register_table db P.members_1nf P.members_1nf_rows;
  Db.register_table db P.equip_1nf P.equip_1nf_rows;
  Db.register_table db P.employees_1nf P.employees_1nf_rows;
  Db.register_table db P.reports P.reports_rows

let create ?page_size ?frames ?layout ?clustering () =
  let db = Db.create ?page_size ?frames ?layout ?clustering () in
  load db;
  db
