(** Loads the paper's example tables (Tables 1-8) into a database —
    shared by the shell's [\demo] command, the integration tests, and
    the bench harness. *)

val load : Db.t -> unit

(** A fresh database with the demo tables, forwarding the options of
    {!Db.create}. *)
val create :
  ?page_size:int ->
  ?frames:int ->
  ?layout:Nf2_storage.Mini_directory.layout ->
  ?clustering:bool ->
  unit ->
  Db.t
