lib/temporal/version_store.mli: Hashtbl Nf2_model Nf2_storage
