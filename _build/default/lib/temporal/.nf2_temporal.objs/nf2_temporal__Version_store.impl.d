lib/temporal/version_store.ml: Codec Fmt Hashtbl Int List Nf2_model Nf2_storage String
