(* The "on-top" baseline: complex objects as linked flat tuples, after
   Lorie/Plouffe /LP83/ and Haskin/Lorie /HL82/ (Section 1 and 4.1 of
   the paper).

   "A complex object is implemented as a series of tuples logically
   linked together.  The tuples are stored as part of normal, flat
   tables with additional attributes not seen by the user ...  Child,
   sibling, father, and root pointers are used for that purpose."

   One heap file per tuple type (= per nesting level), shared by all
   objects — i.e. no per-object clustering, which is exactly the
   performance disadvantage the paper attributes to this approach.
   Each stored tuple carries:
     - its first-level atoms,
     - father and root TIDs,
     - a sibling TID (next element of the same subtable instance),
     - one first-child TID per table-valued attribute. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Heap = Nf2_storage.Heap
module Tid = Nf2_storage.Tid

exception Lorie_error of string

let lorie_error fmt = Fmt.kstr (fun s -> raise (Lorie_error s)) fmt

type level = { path : string; heap : Heap.t }

type t = {
  schema : Schema.t;
  levels : level list; (* one per tuple type, root level first *)
  mutable roots : Tid.t list;
}

let no_tid = { Tid.page = -1; slot = -1 }
let is_no_tid tid = tid.Tid.page = -1

(* Stored record: atoms, father, root, sibling, child heads. *)
let encode_record atoms ~father ~root ~sibling ~children =
  let b = Codec.create_sink () in
  Codec.put_uvarint b (List.length atoms);
  List.iter (Atom.encode b) atoms;
  Tid.encode b father;
  Tid.encode b root;
  Tid.encode b sibling;
  Codec.put_uvarint b (List.length children);
  List.iter (Tid.encode b) children;
  Codec.contents b

let decode_record payload =
  let src = Codec.source_of_string payload in
  let n = Codec.get_uvarint src in
  let atoms = List.init n (fun _ -> Atom.decode src) in
  let father = Tid.decode src in
  let root = Tid.decode src in
  let sibling = Tid.decode src in
  let nc = Codec.get_uvarint src in
  let children = List.init nc (fun _ -> Tid.decode src) in
  (atoms, father, root, sibling, children)

(* Enumerate tuple types (nesting levels) of a schema, depth first. *)
let rec level_paths prefix (tbl : Schema.table) =
  prefix
  :: List.concat_map
       (fun (f : Schema.field) ->
         match f.Schema.attr with
         | Schema.Table sub -> level_paths (prefix ^ "." ^ f.Schema.name) sub
         | Schema.Atomic _ -> [])
       tbl.Schema.fields

let create pool (schema : Schema.t) =
  let levels =
    List.map (fun path -> { path; heap = Heap.create pool }) (level_paths schema.Schema.name schema.Schema.table)
  in
  { schema; levels; roots = [] }

let level t path =
  match List.find_opt (fun l -> l.path = path) t.levels with
  | Some l -> l
  | None -> lorie_error "no level %s" path

let first_level_atoms (tbl : Schema.table) (tup : Value.tuple) =
  List.concat
    (List.map2
       (fun (f : Schema.field) v ->
         match f.Schema.attr, v with Schema.Atomic _, Value.Atom a -> [ a ] | _ -> [])
       tbl.Schema.fields tup)

let table_attrs (tbl : Schema.table) (tup : Value.tuple) =
  List.concat
    (List.map2
       (fun (f : Schema.field) v ->
         match f.Schema.attr, v with
         | Schema.Table sub, Value.Table inner -> [ (f.Schema.name, sub, inner) ]
         | _ -> [])
       tbl.Schema.fields tup)

(* Insert one (sub)tuple and, recursively, its children; returns its
   TID.  Children are inserted first so the father's child-head
   pointers are known; sibling chains are threaded right-to-left.
   Father pointers require a second pass: children are written with
   father = no_tid and patched after the father's TID is known. *)
let rec insert_tuple t ~path (tbl : Schema.table) ~root ~father (tup : Value.tuple) : Tid.t =
  let lv = level t path in
  let atoms = first_level_atoms tbl tup in
  let children_heads =
    List.map
      (fun (name, sub, inner) ->
        let cpath = path ^ "." ^ name in
        (* build the sibling chain back to front *)
        List.fold_right
          (fun ctup next ->
            let ct = insert_tuple t ~path:cpath sub ~root ~father:no_tid ctup in
            set_sibling t ~path:cpath ct next;
            ct)
          inner.Value.tuples no_tid)
      (table_attrs tbl tup)
  in
  let tid = Heap.insert lv.heap (encode_record atoms ~father ~root ~sibling:no_tid ~children:children_heads) in
  let root = if is_no_tid root then tid else root in
  (* patch self root if we are the root; patch children's father *)
  if is_no_tid father then begin
    let atoms, _, _, sibling, children = decode_record (Heap.read_exn lv.heap tid) in
    Heap.update lv.heap tid (encode_record atoms ~father:no_tid ~root ~sibling ~children)
  end;
  List.iter2
    (fun (name, _, _) head ->
      let cpath = path ^ "." ^ name in
      patch_fathers t ~path:cpath ~father:tid ~root head)
    (table_attrs tbl tup) children_heads;
  tid

and set_sibling t ~path tid sibling =
  let lv = level t path in
  let atoms, father, root, _, children = decode_record (Heap.read_exn lv.heap tid) in
  Heap.update lv.heap tid (encode_record atoms ~father ~root ~sibling ~children)

and patch_fathers t ~path ~father ~root head =
  let lv = level t path in
  let rec go tid =
    if not (is_no_tid tid) then begin
      let atoms, _, _, sibling, children = decode_record (Heap.read_exn lv.heap tid) in
      Heap.update lv.heap tid (encode_record atoms ~father ~root ~sibling ~children);
      go sibling
    end
  in
  go head

let insert t (tup : Value.tuple) : Tid.t =
  Value.check_tuple t.schema.Schema.table tup;
  let tid = insert_tuple t ~path:t.schema.Schema.name t.schema.Schema.table ~root:no_tid ~father:no_tid tup in
  t.roots <- tid :: t.roots;
  tid

(* --- retrieval ----------------------------------------------------------- *)

let rec fetch_tuple t ~path (tbl : Schema.table) (tid : Tid.t) : Value.tuple =
  let lv = level t path in
  let atoms, _, _, _, children = decode_record (Heap.read_exn lv.heap tid) in
  let atoms = ref atoms and children = ref children in
  List.map
    (fun (f : Schema.field) ->
      match f.Schema.attr with
      | Schema.Atomic _ -> (
          match !atoms with
          | a :: rest ->
              atoms := rest;
              Value.Atom a
          | [] -> lorie_error "record too short")
      | Schema.Table sub ->
          let head =
            match !children with
            | c :: rest ->
                children := rest;
                c
            | [] -> lorie_error "missing child head"
          in
          let cpath = path ^ "." ^ f.Schema.name in
          let clv = level t cpath in
          let rec chain tid acc =
            if is_no_tid tid then List.rev acc
            else
              let _, _, _, sibling, _ = decode_record (Heap.read_exn clv.heap tid) in
              chain sibling (fetch_tuple t ~path:cpath sub tid :: acc)
          in
          Value.Table { Value.kind = sub.Schema.kind; tuples = chain head [] })
    tbl.Schema.fields

let fetch t (tid : Tid.t) : Value.tuple = fetch_tuple t ~path:t.schema.Schema.name t.schema.Schema.table tid

let roots t = List.rev t.roots

(* Partial retrieval à la fetch_path: must follow pointer chains
   through *stored tuples* (no separate structural information — the
   disadvantage discussed in Section 4.1: navigation touches data). *)
let fetch_element t (tid : Tid.t) ~(attr : string) ~(idx : int) : Value.tuple =
  let tbl = t.schema.Schema.table in
  let _, f = Schema.field_exn tbl attr in
  let sub = match f.Schema.attr with Schema.Table s -> s | _ -> lorie_error "%s is atomic" attr in
  let lv = level t t.schema.Schema.name in
  let _, _, _, _, children = decode_record (Heap.read_exn lv.heap tid) in
  (* child-head position among table attrs *)
  let pos =
    let rec go i = function
      | [] -> lorie_error "no table attr %s" attr
      | (g : Schema.field) :: gs ->
          if String.uppercase_ascii g.Schema.name = String.uppercase_ascii attr then i
          else go (match g.Schema.attr with Schema.Table _ -> i + 1 | Schema.Atomic _ -> i) gs
    in
    go 0 tbl.Schema.fields
  in
  let cpath = t.schema.Schema.name ^ "." ^ attr in
  let clv = level t cpath in
  let rec walk tid i =
    if is_no_tid tid then lorie_error "element %d out of range" idx
    else if i = idx then fetch_tuple t ~path:cpath sub tid
    else
      let _, _, _, sibling, _ = decode_record (Heap.read_exn clv.heap tid) in
      walk sibling (i + 1)
  in
  walk (List.nth children pos) 0
