lib/baseline/ims.ml: Codec Fmt Hashtbl List Nf2_model Nf2_storage String
