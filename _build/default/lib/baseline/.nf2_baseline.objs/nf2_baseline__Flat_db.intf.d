lib/baseline/flat_db.mli: Nf2_algebra Nf2_model Nf2_storage
