lib/baseline/lorie.mli: Nf2_model Nf2_storage
