lib/baseline/codasyl.ml: Codec Fmt List Nf2_model Nf2_storage String
