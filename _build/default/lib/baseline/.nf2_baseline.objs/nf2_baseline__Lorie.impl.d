lib/baseline/lorie.ml: Codec Fmt List Nf2_model Nf2_storage String
