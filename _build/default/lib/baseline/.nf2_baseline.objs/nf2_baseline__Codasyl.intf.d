lib/baseline/codasyl.mli: Nf2_model Nf2_storage
