lib/baseline/ims.mli: Nf2_model Nf2_storage
