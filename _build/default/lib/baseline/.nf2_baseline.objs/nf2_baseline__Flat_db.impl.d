lib/baseline/flat_db.ml: Codec Fmt Hashtbl List Nf2_algebra Nf2_model Nf2_storage
