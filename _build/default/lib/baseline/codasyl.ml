(* A CODASYL/DBTG-style implementation of NF2 objects, the other
   classic technique Section 4.1 lists: "since any hierarchical object
   can be seen as a composition of (possibly many) 1:n relationships,
   the implementation techniques for COSETs /Sch74/ can be used for NF2
   objects as well.  Therefore, lists, chains, and pointer arrays ...
   are also candidates."

   Every table-valued attribute becomes a DBTG set (owner = the parent
   tuple, members = the element tuples).  Two of the classic set
   implementations are provided:

   - [Chain]: the owner record stores the first member's TID; each
     member stores the next member's TID (a singly linked chain, NEXT
     pointers in DBTG terms).  Walking the set is a pointer chase with
     one record read per member.
   - [Pointer_array]: the owner record stores the TID array of all its
     members ("attached pointer array").  Walking the set reads the
     owner once and then each member directly — the design that the
     AIM-II Mini Directory generalises.

   Records of each tuple type live in their own heap, shared by all
   objects (no per-object clustering), as a CODASYL record type's
   realm would be. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Heap = Nf2_storage.Heap
module Tid = Nf2_storage.Tid

exception Codasyl_error of string

let codasyl_error fmt = Fmt.kstr (fun s -> raise (Codasyl_error s)) fmt

type mode = Chain | Pointer_array

let mode_name = function Chain -> "chain" | Pointer_array -> "pointer array"

type level = { path : string; heap : Heap.t }

type t = {
  schema : Schema.t;
  mode : mode;
  levels : level list;
  mutable roots : Tid.t list;
  mutable record_reads : int; (* navigation cost counter *)
}

let no_tid = { Tid.page = -1; slot = -1 }
let is_no_tid tid = tid.Tid.page = -1

(* Record: atoms; chain mode: next-in-set TID + per-set first-member
   TIDs; pointer-array mode: per-set member TID arrays. *)
let encode_record ~atoms ~next ~sets =
  let b = Codec.create_sink () in
  Codec.put_uvarint b (List.length atoms);
  List.iter (Atom.encode b) atoms;
  Tid.encode b next;
  Codec.put_uvarint b (List.length sets);
  List.iter
    (fun tids ->
      Codec.put_uvarint b (List.length tids);
      List.iter (Tid.encode b) tids)
    sets;
  Codec.contents b

let decode_record payload =
  let src = Codec.source_of_string payload in
  let n = Codec.get_uvarint src in
  let atoms = List.init n (fun _ -> Atom.decode src) in
  let next = Tid.decode src in
  let nsets = Codec.get_uvarint src in
  let sets =
    List.init nsets (fun _ ->
        let k = Codec.get_uvarint src in
        List.init k (fun _ -> Tid.decode src))
  in
  (atoms, next, sets)

let rec level_paths prefix (tbl : Schema.table) =
  prefix
  :: List.concat_map
       (fun (f : Schema.field) ->
         match f.Schema.attr with
         | Schema.Table sub -> level_paths (prefix ^ "." ^ f.Schema.name) sub
         | Schema.Atomic _ -> [])
       tbl.Schema.fields

let create ?(mode = Chain) pool (schema : Schema.t) =
  let levels =
    List.map (fun path -> { path; heap = Heap.create pool }) (level_paths schema.Schema.name schema.Schema.table)
  in
  { schema; mode; levels; roots = []; record_reads = 0 }

let level t path =
  match List.find_opt (fun l -> l.path = path) t.levels with
  | Some l -> l
  | None -> codasyl_error "no level %s" path

let reads t = t.record_reads
let reset_reads t = t.record_reads <- 0

let read_record t lv tid =
  t.record_reads <- t.record_reads + 1;
  decode_record (Heap.read_exn lv.heap tid)

let first_level_atoms (tbl : Schema.table) (tup : Value.tuple) =
  List.concat
    (List.map2
       (fun (f : Schema.field) v ->
         match f.Schema.attr, v with Schema.Atomic _, Value.Atom a -> [ a ] | _ -> [])
       tbl.Schema.fields tup)

let table_attrs (tbl : Schema.table) (tup : Value.tuple) =
  List.concat
    (List.map2
       (fun (f : Schema.field) v ->
         match f.Schema.attr, v with
         | Schema.Table sub, Value.Table inner -> [ (f.Schema.name, sub, inner) ]
         | _ -> [])
       tbl.Schema.fields tup)

(* Insert one (sub)tuple and its set members. *)
let rec insert_tuple t ~path (tbl : Schema.table) (tup : Value.tuple) : Tid.t =
  let lv = level t path in
  let atoms = first_level_atoms tbl tup in
  let member_lists =
    List.map
      (fun (name, sub, inner) ->
        let cpath = path ^ "." ^ name in
        List.map (fun child -> insert_tuple t ~path:cpath sub child) inner.Value.tuples)
      (table_attrs tbl tup)
  in
  match t.mode with
  | Pointer_array -> Heap.insert lv.heap (encode_record ~atoms ~next:no_tid ~sets:member_lists)
  | Chain ->
      (* thread NEXT pointers through each member chain *)
      List.iter
        (fun (members, (name, _, _)) ->
          let cpath = path ^ "." ^ name in
          let clv = level t cpath in
          let rec thread = function
            | a :: (b :: _ as rest) ->
                let atoms, _, sets = decode_record (Heap.read_exn clv.heap a) in
                Heap.update clv.heap a (encode_record ~atoms ~next:b ~sets);
                thread rest
            | _ -> ()
          in
          thread members)
        (List.combine member_lists (table_attrs tbl tup));
      let firsts = List.map (function [] -> [] | first :: _ -> [ first ]) member_lists in
      Heap.insert lv.heap (encode_record ~atoms ~next:no_tid ~sets:firsts)

let insert t (tup : Value.tuple) : Tid.t =
  Value.check_tuple t.schema.Schema.table tup;
  let tid = insert_tuple t ~path:t.schema.Schema.name t.schema.Schema.table tup in
  t.roots <- tid :: t.roots;
  tid

let roots t = List.rev t.roots

(* Member TIDs of one set occurrence. *)
let members_of t ~path (set_entry : Tid.t list) ~(cpath : string) : Tid.t list =
  ignore path;
  match t.mode with
  | Pointer_array -> set_entry
  | Chain -> (
      match set_entry with
      | [] -> []
      | [ first ] ->
          let clv = level t cpath in
          let rec walk tid acc =
            if is_no_tid tid then List.rev acc
            else
              let _, next, _ = read_record t clv tid in
              walk next (tid :: acc)
          in
          walk first []
      | _ -> codasyl_error "chain set with multiple heads")

let rec fetch_tuple t ~path (tbl : Schema.table) (tid : Tid.t) : Value.tuple =
  let lv = level t path in
  let atoms, _, sets = read_record t lv tid in
  let atoms = ref atoms and sets = ref sets in
  List.map
    (fun (f : Schema.field) ->
      match f.Schema.attr with
      | Schema.Atomic _ -> (
          match !atoms with
          | a :: rest ->
              atoms := rest;
              Value.Atom a
          | [] -> codasyl_error "record too short")
      | Schema.Table sub ->
          let entry =
            match !sets with
            | s :: rest ->
                sets := rest;
                s
            | [] -> codasyl_error "missing set entry"
          in
          let cpath = path ^ "." ^ f.Schema.name in
          let members = members_of t ~path entry ~cpath in
          Value.Table
            { Value.kind = sub.Schema.kind; tuples = List.map (fetch_tuple t ~path:cpath sub) members })
    tbl.Schema.fields

let fetch t (tid : Tid.t) : Value.tuple =
  fetch_tuple t ~path:t.schema.Schema.name t.schema.Schema.table tid

(* Record reads needed to reach member [idx] of a top-level set: the
   chain implementation must chase [idx+1] pointers; the pointer array
   jumps directly (the trade-off the paper weighs for MD subtuples). *)
let locate_member t (root : Tid.t) ~(attr : string) ~(idx : int) : Tid.t =
  let tbl = t.schema.Schema.table in
  let lv = level t t.schema.Schema.name in
  let _, _, sets = read_record t lv root in
  let pos =
    let rec go i = function
      | [] -> codasyl_error "no table attr %s" attr
      | (g : Schema.field) :: gs ->
          if String.uppercase_ascii g.Schema.name = String.uppercase_ascii attr then i
          else go (match g.Schema.attr with Schema.Table _ -> i + 1 | Schema.Atomic _ -> i) gs
    in
    go 0 tbl.Schema.fields
  in
  let cpath = t.schema.Schema.name ^ "." ^ attr in
  match t.mode with
  | Pointer_array -> (
      match List.nth_opt (List.nth sets pos) idx with
      | Some tid -> tid
      | None -> codasyl_error "member %d out of range" idx)
  | Chain -> (
      let clv = level t cpath in
      let rec walk tid i =
        if is_no_tid tid then codasyl_error "member %d out of range" idx
        else if i = idx then tid
        else
          let _, next, _ = read_record t clv tid in
          walk next (i + 1)
      in
      match List.nth sets pos with
      | [] -> codasyl_error "member %d out of range" idx
      | first :: _ -> walk first 0)
