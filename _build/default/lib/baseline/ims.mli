(** An IMS-style hierarchical database — the system the paper's
    Section 2 contrasts with the NF² approach (Fig 1), retrieved with
    DL/I-like navigational calls: GU (get unique), GN (get next), GNP
    (get next within parent).

    All four classic storage organisations are modelled; they differ in
    how GU locates a root, the cost difference the experiments measure. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Tid = Nf2_storage.Tid

exception Ims_error of string

type organisation =
  | HSAM  (** hierarchic sequential: GU scans from the front *)
  | HISAM  (** indexed sequential: ordered root index *)
  | HDAM  (** hierarchic direct: hashed root entry *)
  | HIDAM  (** indexed direct: ordered index over direct records *)

val organisation_name : organisation -> string

(** A stored segment occurrence: type name (= NF² attribute name; the
    root segment is the schema name), level (root = 0), own atomic
    fields. *)
type segment = { seg_type : string; level : int; fields : Atom.t list }

type t

val create : ?organisation:organisation -> Nf2_storage.Buffer_pool.t -> Schema.t -> t

(** Store one database record (root + dependants in hierarchic
    sequence). *)
val insert : t -> Value.tuple -> unit

val load : ?organisation:organisation -> Nf2_storage.Buffer_pool.t -> Schema.t -> Value.tuple list -> t

(** Segment types of a schema: (name, level, parent), preorder —
    the Fig 1 segment hierarchy. *)
val segment_types : Schema.t -> (string * int * string option) list

(** Atomic fields of one nesting level. *)
val atomic_fields : Schema.table -> string list

(** Flatten one tuple into its hierarchic segment sequence. *)
val segments_of_tuple : Schema.t -> Value.tuple -> segment list

(** {1 DL/I-style cursor} *)

type cursor

val open_cursor : t -> cursor

(** Segments fetched so far — the navigation cost. *)
val reads : cursor -> int

(** Segment search argument: segment type plus (field position,
    expected value) qualifications. *)
type ssa = { seg : string; tests : (int * Atom.t) list }

(** GN: next segment in hierarchic sequence, optionally of one type. *)
val get_next : ?segment:string -> cursor -> segment option

(** GU: position on the first segment satisfying the SSA chain; child
    SSAs match only within the parent's subtree.  Entry cost depends on
    the organisation. *)
val get_unique : cursor -> ssa list -> segment option

(** Set the parent level for subsequent GNP calls. *)
val set_parent_level : cursor -> int -> unit

(** GNP: next segment under the current parent; [None] when the
    sequence leaves the parent's subtree. *)
val get_next_within_parent : ?segment:string -> cursor -> segment option

(** {1 Verification helpers} *)

(** Replay the hierarchic sequence back into NF² tuples. *)
val reconstruct : t -> Value.tuple list

(** @raise Ims_error when segment names are not unique in the hierarchy
    (required by [reconstruct]). *)
val check_unique_segments : Schema.t -> unit
