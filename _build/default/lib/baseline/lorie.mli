(** The "on-top" baseline: complex objects as linked flat tuples, after
    Lorie/Plouffe (/LP83/) and Haskin/Lorie (/HL82/) — tuples stored in
    ordinary flat tables (one heap per tuple type) with system-managed
    child / sibling / father / root pointer attributes.  No per-object
    clustering: exactly the performance disadvantage the paper
    attributes to extending an existing DBMS instead of integrating
    complex objects (Sections 1 and 4.1). *)

module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Tid = Nf2_storage.Tid

exception Lorie_error of string

type t

val create : Nf2_storage.Buffer_pool.t -> Schema.t -> t

(** Store a complex object as linked tuples; returns the root tuple's
    TID. *)
val insert : t -> Value.tuple -> Tid.t

(** Reconstruct an object by following child/sibling chains. *)
val fetch : t -> Tid.t -> Value.tuple

val roots : t -> Tid.t list

(** Element access by pointer chasing through stored tuples — no
    separate structural information, so navigation touches data. *)
val fetch_element : t -> Tid.t -> attr:string -> idx:int -> Value.tuple
