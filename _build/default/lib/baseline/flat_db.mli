(** The pure-relational baseline: full 1NF decomposition.

    An NF² table is split into one flat table per nesting level with
    surrogate SID/PID keys; reconstructing the hierarchy — or answering
    any query the NF² table answers by navigation — requires joins (the
    cost behind the paper's "materialised joins" remark in Example 4). *)

module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel

exception Flat_error of string

type t

val create : Nf2_storage.Buffer_pool.t -> Schema.t -> t

(** Decompose and store one NF² tuple; returns its root surrogate id. *)
val insert : t -> Value.tuple -> int

(** One level's rows as a relation (SID/PID exposed), e.g.
    ["DEPARTMENTS.PROJECTS.MEMBERS"]. *)
val level_rel : t -> string -> Rel.t

(** Join the levels back into the NF² tuples. *)
val reconstruct : t -> Value.tuple list

val reconstruct_with_sids : t -> (int * Value.tuple) list

(** Reconstruct a single object by root SID.  @raise Flat_error. *)
val fetch : t -> int -> Value.tuple
