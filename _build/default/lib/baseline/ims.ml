(* An IMS-style hierarchical database, as the paper's Section 2 and
   4.1 reference it: the DEPARTMENTS hierarchy of Fig 1 "in an IMS
   database could be modelled by defining the segment types and parent
   child relations", retrieved with "navigational language constructs
   like 'get next' (GN) and 'get next within parent' (GNP)".

   All four classic storage organisations are modelled, differing in
   how a root (GU with a root SSA) is located; dependants always follow
   in hierarchic sequence:

   - HSAM  (hierarchic sequential): strictly sequential; GU of a root
     scans from the front of the database.
   - HISAM (hierarchic indexed sequential): an ordered root-key index
     locates the record; sequential processing in key order remains
     possible.
   - HDAM  (hierarchic direct): a hash on the root key reaches the
     record directly; no useful key order.
   - HIDAM (hierarchic indexed direct): an ordered index over root
     keys pointing at direct records — keyed access plus ordered
     sequential processing.

   In this simulation HISAM/HIDAM share an ordered association list as
   the root index and HDAM a hash table; the cost difference that
   matters to the experiments — direct/indexed entry vs front-to-back
   scan — is faithfully reproduced.

   The cursor API mirrors DL/I calls: GU (get unique, with segment
   search arguments), GN (get next), GNP (get next within parent).
   Segment names are the table attribute names of the NF2 schema; the
   root segment is the schema name itself. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Heap = Nf2_storage.Heap
module Tid = Nf2_storage.Tid

exception Ims_error of string

let ims_error fmt = Fmt.kstr (fun s -> raise (Ims_error s)) fmt

type organisation = HSAM | HISAM | HDAM | HIDAM

let organisation_name = function
  | HSAM -> "HSAM"
  | HISAM -> "HISAM"
  | HDAM -> "HDAM"
  | HIDAM -> "HIDAM"

(* A stored segment occurrence. *)
type segment = {
  seg_type : string; (* e.g. "DEPARTMENTS", "PROJECTS", "MEMBERS" *)
  level : int; (* root = 0 *)
  fields : Atom.t list; (* the segment's own (atomic) fields *)
}

type t = {
  schema : Schema.t;
  organisation : organisation;
  heap : Heap.t;
  mutable sequence : Tid.t list; (* hierarchic sequence, stored order (HSAM view) *)
  root_directory : (string, Tid.t list) Hashtbl.t; (* HDAM/HIDAM: root-key -> record's segments *)
  mutable root_index : (string * Tid.t list) list; (* HISAM/HIDAM: ordered root index *)
}

(* --- segment codec ----------------------------------------------------- *)

let encode_segment (s : segment) =
  let b = Codec.create_sink () in
  Codec.put_string b s.seg_type;
  Codec.put_uvarint b s.level;
  Codec.put_uvarint b (List.length s.fields);
  List.iter (Atom.encode b) s.fields;
  Codec.contents b

let decode_segment payload : segment =
  let src = Codec.source_of_string payload in
  let seg_type = Codec.get_string src in
  let level = Codec.get_uvarint src in
  let n = Codec.get_uvarint src in
  { seg_type; level; fields = List.init n (fun _ -> Atom.decode src) }

(* --- segment hierarchy from the NF2 schema ------------------------------ *)

let atomic_fields (tbl : Schema.table) =
  List.filter_map
    (fun (f : Schema.field) ->
      match f.Schema.attr with Schema.Atomic _ -> Some f.Schema.name | Schema.Table _ -> None)
    tbl.Schema.fields

(* All segment types with their levels and parents, preorder. *)
let segment_types (schema : Schema.t) : (string * int * string option) list =
  let rec go name (tbl : Schema.table) level parent acc =
    let acc = (name, level, parent) :: acc in
    List.fold_left
      (fun acc (f : Schema.field) ->
        match f.Schema.attr with
        | Schema.Table sub -> go f.Schema.name sub (level + 1) (Some name) acc
        | Schema.Atomic _ -> acc)
      acc tbl.Schema.fields
  in
  List.rev (go schema.Schema.name schema.Schema.table 0 None [])

(* Flatten one NF2 tuple into its hierarchic segment sequence. *)
let segments_of_tuple (schema : Schema.t) (tup : Value.tuple) : segment list =
  let first_level_atoms (tbl : Schema.table) (tp : Value.tuple) =
    List.concat
      (List.map2
         (fun (f : Schema.field) v ->
           match f.Schema.attr, v with Schema.Atomic _, Value.Atom a -> [ a ] | _ -> [])
         tbl.Schema.fields tp)
  in
  let rec go name (tbl : Schema.table) (tp : Value.tuple) level acc =
    let acc = { seg_type = name; level; fields = first_level_atoms tbl tp } :: acc in
    List.fold_left2
      (fun acc (f : Schema.field) v ->
        match f.Schema.attr, v with
        | Schema.Table sub, Value.Table inner ->
            List.fold_left (fun acc child -> go f.Schema.name sub child (level + 1) acc) acc
              inner.Value.tuples
        | _ -> acc)
      acc tbl.Schema.fields tp
  in
  List.rev (go schema.Schema.name schema.Schema.table tup 0 [])

(* --- database construction ----------------------------------------------- *)

let root_key (s : segment) =
  match s.fields with
  | a :: _ -> Atom.to_string a
  | [] -> ims_error "root segment without fields"

let create ?(organisation = HSAM) pool (schema : Schema.t) =
  {
    schema;
    organisation;
    heap = Heap.create pool;
    sequence = [];
    root_directory = Hashtbl.create 64;
    root_index = [];
  }

(* Insert one database record (a root and its dependants), appended in
   hierarchic sequence. *)
let insert t (tup : Value.tuple) =
  Value.check_tuple t.schema.Schema.table tup;
  let segs = segments_of_tuple t.schema tup in
  let tids = List.map (fun s -> Heap.insert t.heap (encode_segment s)) segs in
  t.sequence <- t.sequence @ tids;
  match segs with
  | root :: _ ->
      let key = root_key root in
      Hashtbl.replace t.root_directory key tids;
      t.root_index <-
        List.merge (fun (a, _) (b, _) -> String.compare a b) [ (key, tids) ]
          (List.filter (fun (k, _) -> k <> key) t.root_index)
  | [] -> ()

let load ?organisation pool schema tuples =
  let t = create ?organisation pool schema in
  List.iter (insert t) tuples;
  t

(* --- DL/I-style cursor ------------------------------------------------------ *)

type cursor = {
  db : t;
  mutable pending : Tid.t list; (* rest of the hierarchic sequence *)
  mutable parent_level : int option; (* set by GNP *)
  mutable reads : int; (* segments fetched — the navigation cost *)
}

let open_cursor t = { db = t; pending = t.sequence; parent_level = None; reads = 0 }

let reads c = c.reads

let fetch c tid =
  c.reads <- c.reads + 1;
  decode_segment (Heap.read_exn c.db.heap tid)

(* Segment search argument: (field position, expected atom). *)
type ssa = { seg : string; tests : (int * Atom.t) list }

let seg_matches (s : segment) (a : ssa) =
  String.uppercase_ascii s.seg_type = String.uppercase_ascii a.seg
  && List.for_all
       (fun (i, expect) ->
         match List.nth_opt s.fields i with Some got -> Atom.equal got expect | None -> false)
       a.tests

(* GN: next segment in hierarchic sequence, optionally of one type. *)
let get_next ?segment (c : cursor) : segment option =
  let rec go () =
    match c.pending with
    | [] -> None
    | tid :: rest ->
        let s = fetch c tid in
        c.pending <- rest;
        let type_ok =
          match segment with
          | None -> true
          | Some name -> String.uppercase_ascii s.seg_type = String.uppercase_ascii name
        in
        if type_ok then Some s else go ()
  in
  go ()

(* GU: position on the first segment satisfying the SSA chain, scanning
   from the front (HSAM) or entering through the root hash (HDAM). *)
let get_unique (c : cursor) (ssas : ssa list) : segment option =
  (match ssas, c.db.organisation with
  | { seg; tests = (0, key) :: _ } :: _, (HDAM | HIDAM)
    when String.uppercase_ascii seg = String.uppercase_ascii c.db.schema.Schema.name -> (
      (* direct entry via the root directory (HIDAM's index lookup is
         modelled with the same one-probe cost) *)
      match Hashtbl.find_opt c.db.root_directory (Atom.to_string key) with
      | Some tids -> c.pending <- tids
      | None -> c.pending <- [])
  | { seg; tests = (0, key) :: _ } :: _, HISAM
    when String.uppercase_ascii seg = String.uppercase_ascii c.db.schema.Schema.name -> (
      (* indexed-sequential entry: binary probe of the ordered index
         (modelled as an assoc lookup; cost = O(log n) probes, not a
         scan of the data) *)
      match List.assoc_opt (Atom.to_string key) c.db.root_index with
      | Some tids -> c.pending <- tids
      | None -> c.pending <- [])
  | _ -> c.pending <- c.db.sequence);
  (* after a parent SSA matches at level L, the child SSA may only
     match inside that parent's subtree (level > L) *)
  let rec go (remaining : ssa list) ~(floor : int option) =
    match remaining with
    | [] -> None
    | a :: rest -> (
        match next_matching c a ~floor with
        | Some s -> if rest = [] then Some s else go rest ~floor:(Some s.level)
        | None -> None)
  and next_matching c a ~floor =
    let rec scan () =
      match c.pending with
      | [] -> None
      | tid :: rest -> (
          let s = fetch c tid in
          match floor with
          | Some l when s.level <= l -> None (* left the parent's subtree *)
          | _ ->
              c.pending <- rest;
              if seg_matches s a then Some s else scan ())
    in
    scan ()
  in
  go ssas ~floor:None

(* GNP: next segment under the current parent (set the parent level
   first with [set_parent_level]); iteration stops when the sequence
   returns to the parent's level or above. *)
let set_parent_level c level = c.parent_level <- Some level

let get_next_within_parent ?segment (c : cursor) : segment option =
  let plevel = match c.parent_level with Some l -> l | None -> ims_error "GNP without parent" in
  let rec go () =
    match c.pending with
    | [] -> None
    | tid :: rest ->
        let s = fetch c tid in
        if s.level <= plevel then None (* left the parent's subtree *)
        else begin
          c.pending <- rest;
          let type_ok =
            match segment with
            | None -> true
            | Some name -> String.uppercase_ascii s.seg_type = String.uppercase_ascii name
          in
          if type_ok then Some s else go ()
        end
  in
  go ()

(* --- reconstruction (for correctness checks) --------------------------------- *)

let reconstruct t : Value.tuple list =
  (* replay the hierarchic sequence into NF2 tuples *)
  let segs = List.map (fun tid -> decode_segment (Heap.read_exn t.heap tid)) t.sequence in
  let rec build (tbl : Schema.table) name level (stream : segment list ref) : Value.tuple option =
    match !stream with
    | s :: rest
      when s.level = level && String.uppercase_ascii s.seg_type = String.uppercase_ascii name ->
        stream := rest;
        let atoms = ref s.fields in
        let tup =
          List.map
            (fun (f : Schema.field) ->
              match f.Schema.attr with
              | Schema.Atomic _ -> (
                  match !atoms with
                  | a :: more ->
                      atoms := more;
                      Value.Atom a
                  | [] -> ims_error "segment too short")
              | Schema.Table sub ->
                  let children = ref [] in
                  let rec collect () =
                    match build sub f.Schema.name (level + 1) stream with
                    | Some child ->
                        children := child :: !children;
                        collect ()
                    | None -> ()
                  in
                  collect ();
                  Value.Table { Value.kind = sub.Schema.kind; tuples = List.rev !children })
            tbl.Schema.fields
        in
        Some tup
    | _ -> None
  in
  let stream = ref segs in
  let acc = ref [] in
  let rec all () =
    match build t.schema.Schema.table t.schema.Schema.name 0 stream with
    | Some tup ->
        acc := tup :: !acc;
        all ()
    | None -> ()
  in
  all ();
  List.rev !acc

(* Children of subtables do not all interleave correctly under the
   naive preorder replay when a segment type appears under multiple
   parents with different field shapes; the NF2 schemas used here have
   unique segment names, which [segment_types] can verify. *)
let check_unique_segments (schema : Schema.t) =
  let names = List.map (fun (n, _, _) -> String.uppercase_ascii n) (segment_types schema) in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    ims_error "segment names must be unique in the hierarchy"
