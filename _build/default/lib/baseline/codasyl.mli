(** A CODASYL/DBTG-style implementation of NF² objects: every
    table-valued attribute becomes a set (owner = parent tuple, members
    = element tuples), implemented as either NEXT-pointer chains or
    attached pointer arrays — the COSET techniques Section 4.1 cites as
    candidates for NF² objects (and which the Mini Directory
    generalises). *)

module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Tid = Nf2_storage.Tid

exception Codasyl_error of string

type mode =
  | Chain  (** owner -> first member; members chain via NEXT *)
  | Pointer_array  (** owner holds all member TIDs *)

val mode_name : mode -> string

type t

val create : ?mode:mode -> Nf2_storage.Buffer_pool.t -> Schema.t -> t

(** Store one NF² object as owner/member records; returns the owner
    (root) record's TID. *)
val insert : t -> Value.tuple -> Tid.t

val roots : t -> Tid.t list

(** Reconstruct an object by walking its sets. *)
val fetch : t -> Tid.t -> Value.tuple

(** Record reads performed so far (navigation cost counter). *)
val reads : t -> int

val reset_reads : t -> unit

(** TID of member [idx] of a top-level set: a chain chases [idx+1]
    pointers; a pointer array jumps directly. *)
val locate_member : t -> Tid.t -> attr:string -> idx:int -> Tid.t
