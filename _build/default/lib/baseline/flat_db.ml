(* The pure-relational baseline: full 1NF decomposition.

   An NF2 table is split into one flat table per nesting level; each
   child level carries a surrogate parent id (plus its own surrogate
   id when it has children).  Reconstruction of the hierarchy — and
   any query that the NF2 table answers by navigation — requires
   joins, which is the cost the paper's Example 4 remark ("hierarchical
   tables can be used to store pre-computed (materialized) joins")
   points at. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Heap = Nf2_storage.Heap
module Rel = Nf2_algebra.Rel

exception Flat_error of string

let flat_error fmt = Fmt.kstr (fun s -> raise (Flat_error s)) fmt

type level = {
  path : string;
  (* flat schema of this level: [SID; PID; own atoms] — SID/PID are
     surrogate keys managed by the system *)
  fields : Schema.field list;
  heap : Heap.t;
}

type t = { schema : Schema.t; levels : level list; mutable next_sid : int }

let atoms_fields (tbl : Schema.table) =
  List.filter
    (fun (f : Schema.field) -> match f.Schema.attr with Schema.Atomic _ -> true | _ -> false)
    tbl.Schema.fields

let rec collect_levels prefix (tbl : Schema.table) : (string * Schema.field list) list =
  (prefix, Schema.int_ "SID" :: Schema.int_ "PID" :: atoms_fields tbl)
  :: List.concat_map
       (fun (f : Schema.field) ->
         match f.Schema.attr with
         | Schema.Table sub -> collect_levels (prefix ^ "." ^ f.Schema.name) sub
         | Schema.Atomic _ -> [])
       tbl.Schema.fields

let create pool (schema : Schema.t) =
  let levels =
    List.map
      (fun (path, fields) -> { path; fields; heap = Heap.create pool })
      (collect_levels schema.Schema.name schema.Schema.table)
  in
  { schema; levels; next_sid = 0 }

let level t path =
  match List.find_opt (fun l -> l.path = path) t.levels with
  | Some l -> l
  | None -> flat_error "no level %s" path

let encode_row atoms =
  let b = Codec.create_sink () in
  Codec.put_uvarint b (List.length atoms);
  List.iter (Atom.encode b) atoms;
  Codec.contents b

let decode_row payload =
  let src = Codec.source_of_string payload in
  let n = Codec.get_uvarint src in
  List.init n (fun _ -> Atom.decode src)

let first_level_atoms (tbl : Schema.table) (tup : Value.tuple) =
  List.concat
    (List.map2
       (fun (f : Schema.field) v ->
         match f.Schema.attr, v with Schema.Atomic _, Value.Atom a -> [ a ] | _ -> [])
       tbl.Schema.fields tup)

(* Insert one NF2 tuple, decomposing it over the levels; returns the
   root surrogate id. *)
let insert t (tup : Value.tuple) : int =
  Value.check_tuple t.schema.Schema.table tup;
  let rec go path (tbl : Schema.table) ~pid tup =
    let sid = t.next_sid in
    t.next_sid <- t.next_sid + 1;
    let lv = level t path in
    ignore (Heap.insert lv.heap (encode_row (Atom.Int sid :: Atom.Int pid :: first_level_atoms tbl tup)));
    List.iter2
      (fun (f : Schema.field) v ->
        match f.Schema.attr, v with
        | Schema.Table sub, Value.Table inner ->
            List.iter (fun child -> ignore (go (path ^ "." ^ f.Schema.name) sub ~pid:sid child)) inner.Value.tuples
        | _ -> ())
      tbl.Schema.fields tup;
    sid
  in
  go t.schema.Schema.name t.schema.Schema.table ~pid:(-1) tup

(* All rows of a level as an in-memory relation (SID/PID exposed). *)
let level_rel t path : Rel.t =
  let lv = level t path in
  let tuples =
    Heap.fold lv.heap (fun acc _ payload -> List.map (fun a -> Value.Atom a) (decode_row payload) :: acc) []
  in
  Rel.of_tuples { Schema.kind = Schema.Set; fields = lv.fields } (List.rev tuples)

(* Reconstruct all NF2 tuples (with their root SIDs) by joining the
   levels back together — the work the integrated NF2 store avoids. *)
let reconstruct_with_sids t : (int * Value.tuple) list =
  let groups : (string, (int, (int * Atom.t list) list ref) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun lv ->
      let by_pid = Hashtbl.create 64 in
      Heap.iter lv.heap (fun _ payload ->
          match decode_row payload with
          | Atom.Int sid :: Atom.Int pid :: atoms -> (
              match Hashtbl.find_opt by_pid pid with
              | Some cell -> cell := (sid, atoms) :: !cell
              | None -> Hashtbl.add by_pid pid (ref [ (sid, atoms) ]))
          | _ -> flat_error "malformed row");
      Hashtbl.add groups lv.path by_pid)
    t.levels;
  let children path pid =
    match Hashtbl.find_opt groups path with
    | None -> []
    | Some by_pid -> (
        match Hashtbl.find_opt by_pid pid with Some cell -> List.rev !cell | None -> [])
  in
  let rec build path (tbl : Schema.table) (sid, atoms) : Value.tuple =
    let rem = ref atoms in
    List.map
      (fun (f : Schema.field) ->
        match f.Schema.attr with
        | Schema.Atomic _ -> (
            match !rem with
            | a :: rest ->
                rem := rest;
                Value.Atom a
            | [] -> flat_error "row too short")
        | Schema.Table sub ->
            let cpath = path ^ "." ^ f.Schema.name in
            Value.Table
              { Value.kind = sub.Schema.kind; tuples = List.map (build cpath sub) (children cpath sid) })
      tbl.Schema.fields
  in
  List.map
    (fun (sid, atoms) -> (sid, build t.schema.Schema.name t.schema.Schema.table (sid, atoms)))
    (children t.schema.Schema.name (-1))

let reconstruct t : Value.tuple list = List.map snd (reconstruct_with_sids t)

(* Reconstruct a single object by root SID. *)
let fetch t (root_sid : int) : Value.tuple =
  match List.assoc_opt root_sid (reconstruct_with_sids t) with
  | Some tup -> tup
  | None -> flat_error "no object with SID %d" root_sid
