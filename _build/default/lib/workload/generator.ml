(* Synthetic workload generators: scaled-up office-automation data in
   the shape of the paper's DEPARTMENTS and REPORTS tables, plus a
   CAD-style assembly hierarchy (the application domain that motivates
   the paper's introduction).  Deterministic via Prng. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value

type dept_params = {
  departments : int;
  projects_per_dept : int;
  members_per_project : int;
  equip_per_dept : int;
  seed : int;
}

let default_dept_params =
  { departments = 20; projects_per_dept = 5; members_per_project = 8; equip_per_dept = 6; seed = 42 }

let functions = [| "Leader"; "Consultant"; "Secretary"; "Staff"; "Engineer"; "Analyst" |]
let equipment_types = [| "3278"; "3179"; "3276"; "PC"; "PC/AT"; "PC/XT"; "PC/GA"; "4361"; "4381" |]

let i v = Value.Atom (Atom.Int v)
let s v = Value.Atom (Atom.Str v)

(* Department numbers start at 100; employee numbers are globally
   unique as the paper assumes. *)
let departments ?(params = default_dept_params) () : Value.tuple list =
  let rng = Prng.create params.seed in
  let next_empno = ref 10000 in
  let next_pno = ref 1 in
  List.init params.departments (fun d ->
      let dno = 100 + d in
      let mgrno =
        incr next_empno;
        !next_empno
      in
      let projects =
        List.init params.projects_per_dept (fun _ ->
            let pno =
              incr next_pno;
              !next_pno
            in
            let pname = String.uppercase_ascii (Prng.word rng 4) in
            let members =
              List.init params.members_per_project (fun _ ->
                  incr next_empno;
                  [ i !next_empno; s (Prng.pick rng functions) ])
            in
            [ i pno; s pname; Value.set members ])
      in
      let equip =
        List.init params.equip_per_dept (fun _ ->
            [ i (Prng.in_range rng 1 9); s (Prng.pick rng equipment_types) ])
      in
      [ i dno; i mgrno; Value.set projects; i (Prng.in_range rng 100 999 * 1000); Value.set equip ])

(* Flat EMPLOYEES rows covering every EMPNO appearing in [depts]. *)
let employees_for ~seed (depts : Value.tuple list) : Value.tuple list =
  let rng = Prng.create seed in
  let last_names = [| "Schmidt"; "Krueger"; "Mayer"; "Olt"; "Weiss"; "Huber"; "Lang"; "Arnold"; "Binder"; "Curtius" |] in
  let first_names = [| "Hort"; "Klaus"; "Fred"; "Andrea"; "Anna"; "Franz"; "Petra"; "Karl"; "Rolf"; "Eva" |] in
  let empnos = ref [] in
  List.iter
    (fun dept ->
      match dept with
      | [ _; Value.Atom (Atom.Int mgr); Value.Table projects; _; _ ] ->
          empnos := mgr :: !empnos;
          List.iter
            (fun p ->
              match p with
              | [ _; _; Value.Table members ] ->
                  List.iter
                    (fun m ->
                      match m with
                      | Value.Atom (Atom.Int e) :: _ -> empnos := e :: !empnos
                      | _ -> ())
                    members.Value.tuples
              | _ -> ())
            projects.Value.tuples
      | _ -> ())
    depts;
  List.rev_map
    (fun e ->
      [
        i e;
        s (Prng.pick rng last_names);
        s (Prng.pick rng first_names);
        s (if Prng.bool rng then "male" else "female");
      ])
    (List.sort_uniq Int.compare !empnos)

(* REPORTS-style corpus for the text-index experiment. *)
type report_params = { reports : int; title_words : int; authors_max : int; seed : int }

let default_report_params = { reports = 200; title_words = 6; authors_max = 4; seed = 7 }

let vocabulary =
  [|
    "computational"; "minicomputer"; "computer"; "database"; "relational"; "hierarchy";
    "storage"; "structure"; "index"; "text"; "search"; "fragment"; "address"; "query";
    "optimization"; "transaction"; "recovery"; "concurrency"; "office"; "automation";
    "design"; "manufacturing"; "integrated"; "system"; "prototype"; "language";
  |]

let author_pool = [| "Jones"; "Abraham"; "Medley"; "Meyer"; "Bach"; "Racer"; "Dadam"; "Pistor"; "Lum"; "Walch" |]

let reports ?(params = default_report_params) () : Value.tuple list =
  let rng = Prng.create params.seed in
  List.init params.reports (fun n ->
      let nauthors = Prng.in_range rng 1 params.authors_max in
      let authors = List.init nauthors (fun _ -> [ s (Prng.pick rng author_pool) ]) in
      let title =
        String.concat " " (List.init params.title_words (fun _ -> Prng.pick rng vocabulary))
      in
      let descriptors =
        List.init (Prng.in_range rng 1 4) (fun _ ->
            [ s (Prng.pick rng vocabulary); Value.Atom (Atom.Float (Prng.float rng)) ])
      in
      [ s (Printf.sprintf "%04d" n); Value.list_ authors; s title; Value.set descriptors ])

(* CAD-style assembly hierarchy: ASSEMBLIES { ANO, NAME,
   SUBASSEMBLIES { SNO, SNAME, PARTS { PNO, MATERIAL, QTY } },
   WEIGHT } — a deep-nesting workload. *)
let assemblies_schema : Schema.t =
  Schema.relation "ASSEMBLIES"
    [
      Schema.int_ "ANO";
      Schema.str_ "NAME";
      Schema.set_ "SUBASSEMBLIES"
        [
          Schema.int_ "SNO";
          Schema.str_ "SNAME";
          Schema.set_ "PARTS" [ Schema.int_ "PNO"; Schema.str_ "MATERIAL"; Schema.int_ "QTY" ];
        ];
      Schema.float_ "WEIGHT";
    ]

type assembly_params = { assemblies : int; subs_per_assembly : int; parts_per_sub : int; seed : int }

let default_assembly_params = { assemblies = 10; subs_per_assembly = 8; parts_per_sub = 12; seed = 99 }

let materials = [| "steel"; "aluminium"; "copper"; "plastic"; "glass"; "titanium" |]

let assemblies ?(params = default_assembly_params) () : Value.tuple list =
  let rng = Prng.create params.seed in
  let next = ref 0 in
  List.init params.assemblies (fun a ->
      let subs =
        List.init params.subs_per_assembly (fun sx ->
            let parts =
              List.init params.parts_per_sub (fun _ ->
                  incr next;
                  [ i !next; s (Prng.pick rng materials); i (Prng.in_range rng 1 50) ])
            in
            [ i ((a * 100) + sx); s (String.uppercase_ascii (Prng.word rng 5)); Value.set parts ])
      in
      [ i a; s (String.uppercase_ascii (Prng.word rng 6)); Value.set subs; Value.Atom (Atom.Float (Prng.float rng *. 1000.)) ])
