(* The literal example data of the paper: Tables 1-8 (Section 2) and
   the schemas behind Figs 1-5.  These fixtures are shared between the
   integration tests and the bench harness so that reproduced artefacts
   can be checked for exactness. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value

open Schema

(* ------------------------------------------------------------------ *)
(* Schemas *)

(* Table 5: the NF2 DEPARTMENTS table. *)
let departments : Schema.t =
  relation "DEPARTMENTS"
    [
      int_ "DNO";
      int_ "MGRNO";
      set_ "PROJECTS"
        [
          int_ "PNO";
          str_ "PNAME";
          set_ "MEMBERS" [ int_ "EMPNO"; str_ "FUNCTION" ];
        ];
      int_ "BUDGET";
      set_ "EQUIP" [ int_ "QU"; str_ "TYPE" ];
    ]

(* Tables 1-4: the 1NF decomposition. *)
let departments_1nf : Schema.t =
  relation "DEPARTMENTS_1NF" [ int_ "DNO"; int_ "MGRNO"; int_ "BUDGET" ]

let projects_1nf : Schema.t =
  relation "PROJECTS_1NF" [ int_ "PNO"; str_ "PNAME"; int_ "DNO" ]

let members_1nf : Schema.t =
  relation "MEMBERS_1NF" [ int_ "EMPNO"; int_ "PNO"; int_ "DNO"; str_ "FUNCTION" ]

let equip_1nf : Schema.t = relation "EQUIP_1NF" [ int_ "DNO"; int_ "QU"; str_ "TYPE" ]

(* Table 6: REPORTS with an ordered AUTHORS list and a DESCRIPTORS set. *)
let reports : Schema.t =
  relation "REPORTS"
    [
      str_ "REPNO";
      list_ "AUTHORS" [ str_ "NAME" ];
      str_ "TITLE";
      set_ "DESCRIPTORS" [ str_ "WORD"; float_ "WEIGHT" ];
    ]

(* Table 8: EMPLOYEES-1NF. *)
let employees_1nf : Schema.t =
  relation "EMPLOYEES_1NF" [ int_ "EMPNO"; str_ "LNAME"; str_ "FNAME"; str_ "SEX" ]

(* Table 7: the flat result of Example 4. *)
let example4_result_schema : Schema.t =
  relation "EX4" [ int_ "DNO"; int_ "MGRNO"; int_ "PNO"; str_ "PNAME"; int_ "EMPNO"; str_ "FUNCTION" ]

(* ------------------------------------------------------------------ *)
(* Values *)

let i v = Value.Atom (Atom.Int v)
let s v = Value.Atom (Atom.Str v)
let f v = Value.Atom (Atom.Float v)

let member empno func = [ i empno; s func ]
let equip qu ty = [ i qu; s ty ]
let project pno pname members = [ i pno; s pname; Value.set members ]

(* Table 5 contents, exactly as printed in the paper. *)
let dept_314 : Value.tuple =
  [
    i 314;
    i 56194;
    Value.set
      [
        project 17 "CGA" [ member 39582 "Leader"; member 56019 "Consultant"; member 69011 "Secretary" ];
        project 23 "HEAP" [ member 58912 "Staff"; member 90011 "Leader"; member 78218 "Secretary"; member 98902 "Staff" ];
      ];
    i 320_000;
    Value.set [ equip 2 "3278"; equip 3 "PC/AT"; equip 1 "PC" ];
  ]

let dept_218 : Value.tuple =
  [
    i 218;
    i 71349;
    Value.set
      [
        project 25 "TEXT"
          [
            member 12723 "Staff";
            member 89211 "Staff";
            member 92100 "Leader";
            member 89921 "Consultant";
            member 95023 "Secretary";
            member 44512 "Consultant";
          ];
      ];
    i 440_000;
    Value.set [ equip 2 "3278"; equip 2 "PC/AT"; equip 1 "3179"; equip 1 "PC/AT" ];
  ]

(* Note: the paper's Table 5 prints equipment `2 PC/AT` and `1 3179`
   etc. for department 218; EQUIP-1NF (Table 4) lists (218: 2 3278,
   2 PC/AT, 1 3179, 1 PC/GA).  We follow Table 4's row set. *)
let dept_218_equip_fix : Value.tuple =
  [
    i 218;
    i 71349;
    Value.set
      [
        project 25 "TEXT"
          [
            member 12723 "Staff";
            member 89211 "Staff";
            member 92100 "Leader";
            member 89921 "Consultant";
            member 95023 "Secretary";
            member 44512 "Consultant";
          ];
      ];
    i 440_000;
    Value.set [ equip 2 "3278"; equip 2 "PC/AT"; equip 1 "3179"; equip 1 "PC/GA" ];
  ]

let dept_417 : Value.tuple =
  [
    i 417;
    i 91093;
    Value.set
      [
        project 37 "NEBS"
          [ member 87710 "Secretary"; member 81193 "Leader"; member 75913 "Staff"; member 96001 "Staff" ];
      ];
    i 360_000;
    Value.set [ equip 1 "4361"; equip 4 "PC/XT"; equip 4 "PC/AT"; equip 2 "3278"; equip 1 "3276"; equip 1 "3179"; equip 1 "PC/GA" ];
  ]

let departments_rows : Value.tuple list = [ dept_314; dept_218_equip_fix; dept_417 ]

let departments_table : Value.table = { Value.kind = Schema.Set; tuples = departments_rows }

(* Tables 1-4 as independent row sets (they are the canonical 1NF
   decomposition of the rows above). *)
let departments_1nf_rows : Value.tuple list =
  [ [ i 314; i 56194; i 320_000 ]; [ i 218; i 71349; i 440_000 ]; [ i 417; i 91093; i 360_000 ] ]

let projects_1nf_rows : Value.tuple list =
  [
    [ i 17; s "CGA"; i 314 ];
    [ i 23; s "HEAP"; i 314 ];
    [ i 25; s "TEXT"; i 218 ];
    [ i 37; s "NEBS"; i 417 ];
  ]

let members_1nf_rows : Value.tuple list =
  [
    [ i 39582; i 17; i 314; s "Leader" ];
    [ i 56019; i 17; i 314; s "Consultant" ];
    [ i 69011; i 17; i 314; s "Secretary" ];
    [ i 58912; i 23; i 314; s "Staff" ];
    [ i 90011; i 23; i 314; s "Leader" ];
    [ i 78218; i 23; i 314; s "Secretary" ];
    [ i 98902; i 23; i 314; s "Staff" ];
    [ i 12723; i 25; i 218; s "Staff" ];
    [ i 89211; i 25; i 218; s "Staff" ];
    [ i 92100; i 25; i 218; s "Leader" ];
    [ i 89921; i 25; i 218; s "Consultant" ];
    [ i 95023; i 25; i 218; s "Secretary" ];
    [ i 44512; i 25; i 218; s "Consultant" ];
    [ i 87710; i 37; i 417; s "Secretary" ];
    [ i 81193; i 37; i 417; s "Leader" ];
    [ i 75913; i 37; i 417; s "Staff" ];
    [ i 96001; i 37; i 417; s "Staff" ];
  ]

let equip_1nf_rows : Value.tuple list =
  [
    [ i 314; i 2; s "3278" ];
    [ i 314; i 3; s "PC/AT" ];
    [ i 314; i 1; s "PC" ];
    [ i 218; i 2; s "3278" ];
    [ i 218; i 2; s "PC/AT" ];
    [ i 218; i 1; s "3179" ];
    [ i 218; i 1; s "PC/GA" ];
    [ i 417; i 1; s "4361" ];
    [ i 417; i 4; s "PC/XT" ];
    [ i 417; i 4; s "PC/AT" ];
    [ i 417; i 2; s "3278" ];
    [ i 417; i 1; s "3276" ];
    [ i 417; i 1; s "3179" ];
    [ i 417; i 1; s "PC/GA" ];
  ]

(* Table 8. *)
let employees_1nf_rows : Value.tuple list =
  [
    [ i 56194; s "Schmidt"; s "Hort"; s "male" ];
    [ i 39582; s "Krueger"; s "Klaus"; s "male" ];
    [ i 56019; s "Mayer"; s "Fred"; s "male" ];
    [ i 69011; s "Olt"; s "Andrea"; s "female" ];
    [ i 96001; s "Paulsen"; s "Hein"; s "male" ];
    [ i 58912; s "Weiss"; s "Anna"; s "female" ];
    [ i 90011; s "Huber"; s "Franz"; s "male" ];
    [ i 78218; s "Lang"; s "Petra"; s "female" ];
    [ i 98902; s "Arnold"; s "Karl"; s "male" ];
    [ i 12723; s "Binder"; s "Rolf"; s "male" ];
    [ i 89211; s "Curtius"; s "Eva"; s "female" ];
    [ i 92100; s "Decker"; s "Hans"; s "male" ];
    [ i 89921; s "Ernst"; s "Maria"; s "female" ];
    [ i 95023; s "Fischer"; s "Inge"; s "female" ];
    [ i 44512; s "Graf"; s "Otto"; s "male" ];
    [ i 71349; s "Hoffmann"; s "Willi"; s "male" ];
    [ i 91093; s "Ibsen"; s "Nora"; s "female" ];
    [ i 87710; s "Jung"; s "Lisa"; s "female" ];
    [ i 81193; s "Kohl"; s "Emil"; s "male" ];
    [ i 75913; s "Lorenz"; s "Paul"; s "male" ];
  ]

(* Table 6 contents. *)
let report repno authors title descriptors =
  [
    s repno;
    Value.list_ (List.map (fun a -> [ s a ]) authors);
    s title;
    Value.set (List.map (fun (w, wt) -> [ s w; f wt ]) descriptors);
  ]

let reports_rows : Value.tuple list =
  [
    report "0179" [ "Jones" ] "Concurrency and Consistency Control"
      [ ("Concurrency Control", 0.6); ("Recovery", 0.3); ("Distribution", 0.1) ];
    report "0189" [ "Abraham"; "Medley" ] "Text Editing and String Search"
      [ ("Formatting", 0.3); ("Editing", 0.7) ];
    report "0292" [ "Meyer"; "Bach"; "Racer" ] "Branch and Bound Optimization"
      [ ("Branch and Bound", 0.6); ("Genetic Collection", 0.4) ];
  ]

(* Table 7: expected result rows of Example 4 (unnest of Table 5,
   projecting away BUDGET and EQUIP). *)
let example4_expected : Value.tuple list =
  List.concat_map
    (fun dept ->
      match dept with
      | [ dno; mgrno; Value.Table projects; _budget; _equip ] ->
          List.concat_map
            (fun proj ->
              match proj with
              | [ pno; pname; Value.Table members ] ->
                  List.map
                    (fun m ->
                      match m with
                      | [ empno; func ] -> [ dno; mgrno; pno; pname; empno; func ]
                      | _ -> assert false)
                    members.Value.tuples
              | _ -> assert false)
            projects.Value.tuples
      | _ -> assert false)
    departments_rows
