lib/workload/generator.ml: Int List Nf2_model Printf Prng String
