lib/workload/paper_data.ml: List Nf2_model
