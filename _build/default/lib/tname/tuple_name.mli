(** Tuple names (Section 4.3 of the paper): system-generated keys that
    identify complex objects, subobjects, and subtables across tables,
    implemented like hierarchical index addresses so the same machinery
    applies.  Unlike index addresses, t-names also exist for subtables
    — and exactly those are not legal as index addresses. *)

module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module OS = Nf2_storage.Object_store
module Tid = Nf2_storage.Tid

exception Tname_error of string

type kind =
  | K_object  (** a whole complex object *)
  | K_subobject  (** a complex or flat subobject *)
  | K_subtable of int  (** a subtable (payload: path length) *)

type t = { table : string; kind : kind; root : Tid.t; steps : OS.step list }

val kind_name : kind -> string
val to_string : t -> string

(** Subtable t-names are not legal index addresses (the paper's
    distinction between t-names and i-addresses). *)
val valid_as_index_address : t -> bool

(** {1 Construction} *)

val of_object : table:string -> Tid.t -> t

(** Path must end at an element.  @raise Tname_error. *)
val of_subobject : table:string -> Tid.t -> OS.step list -> t

(** Path must end at a table attribute.  @raise Tname_error. *)
val of_subtable : table:string -> Tid.t -> OS.step list -> t

(** {1 Resolution} *)

(** Dereference against the store the name was minted on: objects and
    subobjects yield one-tuple tables; subtables yield their rows. *)
val resolve : OS.t -> Schema.t -> t -> Value.v

(** {1 Token registry}

    Databases hand out opaque string tokens for embedding in
    application programs (the paper's motivation). *)

type registry

val create_registry : unit -> registry
val register : registry -> t -> string

(** @raise Tname_error on unknown tokens. *)
val find_token : registry -> string -> t

val all : registry -> (string * t) list

(** Rebuild a registry from persisted pairs; new tokens stay unique. *)
val restore_registry : (string * t) list -> registry
