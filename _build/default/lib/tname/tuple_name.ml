(* Tuple names (Section 4.3 of the paper): system-generated keys that
   identify complex objects, complex subobjects, flat subobjects, and
   subtables across tables, implemented like hierarchical index
   addresses so the same machinery (and query optimisation) applies.

   Per Fig 8:
     U          t-name of a complex object   = its root TID
     V = V1.V2  t-name of a complex subobject = path to its first-level
                data subtuple
     T = T1..T3 t-name of a flat subobject    = path to its data subtuple
     W, X       t-names of subtables          = path to the *subtable*,
                addressed here as the owning (sub)object's data-subtuple
                path plus the attribute position — this works uniformly
                under SS1/SS2/SS3, whereas an MD-subtuple pointer (the
                paper's sketch) would not exist for subtables under SS2;
                the paper itself notes a modified implementation is
                needed in such cases /Kue86/.

   The difference the paper requires — subtable t-names are *not* legal
   index addresses — is captured by the [kind] tag. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module OS = Nf2_storage.Object_store
module Tid = Nf2_storage.Tid
module Mini_tid = Nf2_storage.Mini_tid

exception Tname_error of string

let tname_error fmt = Fmt.kstr (fun s -> raise (Tname_error s)) fmt

type kind =
  | K_object (* a whole complex object *)
  | K_subobject (* a complex or flat subobject *)
  | K_subtable of int (* a subtable: attribute position in its owner *)

type t = {
  table : string; (* catalog name of the owning table *)
  kind : kind;
  root : Tid.t;
  steps : OS.step list; (* navigation path from the root *)
}

let kind_name = function
  | K_object -> "object"
  | K_subobject -> "subobject"
  | K_subtable _ -> "subtable"

let to_string t =
  let step_str = function OS.Attr a -> a | OS.Elem i -> string_of_int i in
  Printf.sprintf "@%s:%s:%s%s" t.table (Tid.to_string t.root)
    (String.concat "/" (List.map step_str t.steps))
    (match t.kind with K_subtable i -> Printf.sprintf "!%d" i | _ -> "")

(* t-names are usable as index addresses only for objects/subobjects *)
let valid_as_index_address t = match t.kind with K_subtable _ -> false | _ -> true

(* --- construction ------------------------------------------------------ *)

let of_object ~table (root : Tid.t) = { table; kind = K_object; root; steps = [] }

(* [steps] must address an element (…; Attr a; Elem i). *)
let of_subobject ~table (root : Tid.t) (steps : OS.step list) =
  (match List.rev steps with
  | OS.Elem _ :: _ -> ()
  | _ -> tname_error "subobject t-name path must end at an element");
  { table; kind = K_subobject; root; steps }

(* [steps] must address a subtable (…; Attr a). *)
let of_subtable ~table (root : Tid.t) (steps : OS.step list) =
  match List.rev steps with
  | OS.Attr _ :: _ -> { table; kind = K_subtable (List.length steps); root; steps }
  | _ -> tname_error "subtable t-name path must end at an attribute"

(* --- resolution --------------------------------------------------------- *)

(* Dereference a t-name against the store it was minted on. *)
let resolve store (schema : Schema.t) (t : t) : Value.v =
  match t.kind with
  | K_object ->
      Value.Table { Value.kind = Schema.Set; tuples = [ OS.fetch store schema t.root ] }
  | K_subobject | K_subtable _ -> OS.fetch_path store schema t.root t.steps

(* --- registry ------------------------------------------------------------ *)

(* Databases hand out t-name tokens; the registry resolves tokens back.
   Tokens are stable strings suitable for embedding in application
   programs (the paper's motivation: communicate references to database
   objects to application programs for later direct access). *)
type registry = { mutable names : (string * t) list; mutable counter : int }

let create_registry () = { names = []; counter = 0 }

let register reg (t : t) : string =
  reg.counter <- reg.counter + 1;
  let token = Printf.sprintf "t%06d" reg.counter in
  reg.names <- (token, t) :: reg.names;
  token

let find_token reg token =
  match List.assoc_opt token reg.names with
  | Some t -> t
  | None -> tname_error "unknown tuple name token %s" token

let all reg = reg.names

(* Rebuild a registry from persisted (token, name) pairs; the counter
   resumes above the largest token so new tokens stay unique. *)
let restore_registry (names : (string * t) list) : registry =
  let counter =
    List.fold_left
      (fun acc (token, _) ->
        match int_of_string_opt (String.sub token 1 (String.length token - 1)) with
        | Some n -> max acc n
        | None -> acc)
      0 names
  in
  { names; counter }
