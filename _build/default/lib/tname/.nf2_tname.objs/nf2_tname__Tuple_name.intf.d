lib/tname/tuple_name.mli: Nf2_model Nf2_storage
