lib/tname/tuple_name.ml: Fmt List Nf2_model Nf2_storage Printf String
