lib/lock/predicate_lock.mli: Nf2_model
