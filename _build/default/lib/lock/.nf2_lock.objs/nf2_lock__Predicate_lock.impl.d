lib/lock/predicate_lock.ml: Int List Nf2_model String
