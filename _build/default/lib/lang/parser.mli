(** Recursive-descent parser for the AIM-II query language.

    Grammar sketch (case-insensitive keywords; [';'] separates
    statements):

    {v
    query   ::= SELECT [DISTINCT] item,..  FROM range,..   -- or SELECT star
                [WHERE pred] [ORDER BY expr [DESC],..]
    item    ::= expr [AS name] | (query) = name      -- paper's naming
    range   ::= var IN table | var IN path [ASOF expr] | table
    pred    ::= comparisons, AND/OR/NOT, EXISTS/ALL range [:] pred,
                expr CONTAINS 'mask'
    path    ::= ident (.ident | [int])*
    ddl     ::= CREATE TABLE name (field type,..) [WITH VERSIONS]
              | CREATE [TEXT] INDEX ON t (path) [USING DATA|ROOT|HIERARCHICAL]
              | ALTER TABLE t ADD f type | ALTER TABLE t DROP f
              | DROP TABLE t
    dml     ::= INSERT INTO t[.sub]* [WHERE pred] VALUES (lit,..),..
              | UPDATE t[.sub]* SET a = expr,.. [WHERE pred] [AT expr]
              | DELETE FROM t[.sub]* [WHERE pred] [AT expr]
    lit     ::= atom | {(lit,..),..} | <(lit,..),..>     -- sets / lists
    v} *)

exception Parse_error of string

(** Parse a [';']-separated script.  @raise Parse_error / Lexer.Lex_error. *)
val parse_script : string -> Ast.stmt list

(** Parse exactly one statement. *)
val parse_one : string -> Ast.stmt

(** Parse a single SELECT. *)
val parse_query_string : string -> Ast.query

(** Parse one statement with ['?'] parameter placeholders; returns the
    statement and the number of parameters. *)
val parse_prepared : string -> Ast.stmt * int
