(** Hand-written lexer for the AIM-II query language: case-insensitive
    keywords, ['...'] strings with quote doubling, [320_000]-style
    numeric literals, [--] line comments, and the [?] parameter
    placeholder. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercased keyword *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LANGLE
  | COMMA
  | DOT
  | SEMI
  | COLON
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | QMARK

exception Lex_error of string

val keywords : string list
val tokenize : string -> token list
val token_to_string : token -> string
