lib/lang/parser.ml: Array Ast Fmt Lexer List Nf2_model
