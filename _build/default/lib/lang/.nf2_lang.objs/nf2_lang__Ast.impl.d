lib/lang/ast.ml: List Nf2_model Printf String
