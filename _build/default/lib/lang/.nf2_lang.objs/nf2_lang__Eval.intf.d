lib/lang/eval.mli: Ast Nf2_algebra Nf2_index Nf2_model Nf2_storage
