lib/lang/lexer.ml: Buffer Fmt List Nf2_model String
