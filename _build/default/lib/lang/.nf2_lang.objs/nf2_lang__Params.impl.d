lib/lang/params.ml: Array Ast Fmt List Nf2_model Option
