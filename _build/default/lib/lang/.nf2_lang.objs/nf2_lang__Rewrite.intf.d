lib/lang/rewrite.mli: Ast
