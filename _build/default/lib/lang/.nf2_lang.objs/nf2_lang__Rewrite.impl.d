lib/lang/rewrite.ml: Ast Float List Nf2_model Option
