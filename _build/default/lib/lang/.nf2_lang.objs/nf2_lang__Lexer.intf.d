lib/lang/lexer.mli:
