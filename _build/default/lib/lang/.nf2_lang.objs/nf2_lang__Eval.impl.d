lib/lang/eval.ml: Ast Float Fmt Hashtbl Lazy List Masked Nf2_algebra Nf2_index Nf2_model Nf2_storage Option Printf Rewrite String
