(* Abstract syntax of the AIM-II query language: a SELECT-FROM-WHERE
   language generalised to NF2 tables (Section 3 of the paper, after
   /PT85, PA86/), plus the DDL and DML needed to define and maintain
   extended NF2 tables. *)

module Atom = Nf2_model.Atom

type path = { var : string option; steps : path_step list }

and path_step = Field of string | Subscript of int (* 1-based, lists *)

type expr =
  | Const of Atom.t
  | Param of int (* 1-based '?' placeholder, bound at execution *)
  | Path of path
  | Subquery of query
  | Binop of binop * expr * expr
  | Neg of expr
  | Agg of agg * expr option (* COUNT(T), SUM(x.A), ... over a table expr *)

and binop = Add | Sub | Mul | Div

and agg = Count | Sum | Min | Max | Avg

and pred =
  | Cmp of cmp * expr * expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Exists of range * pred
  | Forall of range * pred
  | Contains of expr * string (* masked pattern *)
  | Bool_expr of expr (* e.g. a BOOL attribute used directly *)

and cmp = Eq | Ne | Lt | Le | Gt | Ge

and range = { rvar : string; source : source; asof : expr option }

and source = Table_src of string | Path_src of path

and sel_item = { expr : expr; alias : string option }

and order_item = { key : expr; descending : bool }

and query = {
  distinct : bool;
  select : sel_list;
  from : range list;
  where : pred option;
  order_by : order_item list;
}

and sel_list = Star | Items of sel_item list

(* --- DDL / DML ------------------------------------------------------- *)

type field_def = { fname : string; ftype : type_def }

and type_def =
  | T_atom of Atom.ty
  | T_table of Nf2_model.Schema.kind * field_def list

type literal_value =
  | L_atom of Atom.t
  | L_param of int (* '?' placeholder in a VALUES literal *)
  | L_table of Nf2_model.Schema.kind * literal_value list list (* rows of values *)

type index_strategy = S_data | S_root | S_hier

type stmt =
  | Select of query
  | Create_table of { name : string; fields : field_def list; versioned : bool }
  | Drop_table of string
  | Create_index of { table : string; path : string list; strategy : index_strategy }
  | Create_text_index of { table : string; path : string list }
  | Insert of { table : string; sub_path : string list; where : pred option; rows : literal_value list list }
  | Update of {
      table : string;
      sub_path : string list;  (* non-empty: update elements of a subtable *)
      sets : (string * expr) list;
      where : pred option;
      at : expr option;
    }
  | Delete of {
      table : string;
      sub_path : string list;  (* non-empty: delete elements of a subtable *)
      where : pred option;
      at : expr option;
    }
  | Alter_add of { table : string; field : field_def }
  | Alter_drop of { table : string; attr : string }
  | Explain of query
  | Begin_txn
  | Commit
  | Rollback
  | Show_tables
  | Describe of string

(* --- printing (used for parser round-trip tests and EXPLAIN) ---------- *)

let path_to_string (p : path) =
  let steps =
    List.map (function Field f -> "." ^ f | Subscript i -> Printf.sprintf "[%d]" i) p.steps
  in
  let base = match p.var with Some v -> v | None -> "" in
  let s = base ^ String.concat "" steps in
  if String.length s > 0 && s.[0] = '.' then String.sub s 1 (String.length s - 1) else s

let rec expr_to_string = function
  | Const a -> Atom.to_literal a
  | Param i -> Printf.sprintf "?%d" i
  | Path p -> path_to_string p
  | Subquery q -> "(" ^ query_to_string q ^ ")"
  | Binop (op, a, b) ->
      let o = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Printf.sprintf "(%s %s %s)" (expr_to_string a) o (expr_to_string b)
  | Neg e -> "(-" ^ expr_to_string e ^ ")"
  | Agg (a, e) ->
      let n = match a with Count -> "COUNT" | Sum -> "SUM" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG" in
      n ^ "(" ^ (match e with Some e -> expr_to_string e | None -> "*") ^ ")"

and pred_to_string = function
  | Cmp (c, a, b) ->
      let o = match c with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" in
      Printf.sprintf "%s %s %s" (expr_to_string a) o (expr_to_string b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (pred_to_string a) (pred_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (pred_to_string a) (pred_to_string b)
  | Not p -> "NOT (" ^ pred_to_string p ^ ")"
  | Exists (r, p) -> Printf.sprintf "EXISTS %s: %s" (range_to_string r) (pred_to_string p)
  | Forall (r, p) -> Printf.sprintf "ALL %s: %s" (range_to_string r) (pred_to_string p)
  | Contains (e, pat) -> Printf.sprintf "%s CONTAINS '%s'" (expr_to_string e) pat
  | Bool_expr e -> expr_to_string e

and range_to_string r =
  let src = match r.source with Table_src t -> t | Path_src p -> path_to_string p in
  let asof = match r.asof with Some e -> " ASOF " ^ expr_to_string e | None -> "" in
  Printf.sprintf "%s IN %s%s" r.rvar src asof

and query_to_string q =
  let sel =
    match q.select with
    | Star -> "*"
    | Items items ->
        String.concat ", "
          (List.map
             (fun { expr; alias } ->
               expr_to_string expr ^ match alias with Some a -> " AS " ^ a | None -> "")
             items)
  in
  let from = String.concat ", " (List.map range_to_string q.from) in
  let where = match q.where with Some p -> " WHERE " ^ pred_to_string p | None -> "" in
  let order =
    match q.order_by with
    | [] -> ""
    | items ->
        " ORDER BY "
        ^ String.concat ", "
            (List.map (fun { key; descending } -> expr_to_string key ^ if descending then " DESC" else "") items)
  in
  Printf.sprintf "SELECT %s%s FROM %s%s%s" (if q.distinct then "DISTINCT " else "") sel from where order
