(** Symbolic query transformation (the paper's Section 5 research
    direction): semantics-preserving normalisation applied before
    evaluation — constant folding, boolean simplification, negation
    pushdown, and quantifier duality (NOT EXISTS ⇔ ALL NOT), which
    also surfaces indexable shapes for the planner. *)

val rewrite_expr : Ast.expr -> Ast.expr
val rewrite_pred : Ast.pred -> Ast.pred
val rewrite_query : Ast.query -> Ast.query

(** Flattened, deduplicated conjuncts of a predicate. *)
val conjuncts_dedup : Ast.pred -> Ast.pred list

val is_true : Ast.pred -> bool
val is_false : Ast.pred -> bool
val tt : Ast.pred
val ff : Ast.pred
