(* Typed in-memory relations: a schema table paired with a value table.
   This is the currency of the NF2 algebra operators (Jaeschke/Schek
   /JS82, SS86/) and of query-language results. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value

type t = { schema : Schema.table; data : Value.table }

exception Algebra_error of string

let algebra_error fmt = Fmt.kstr (fun s -> raise (Algebra_error s)) fmt

let make schema data =
  if data.Value.kind <> schema.Schema.kind then
    algebra_error "table kind does not match schema kind";
  List.iter (Value.check_tuple schema) data.Value.tuples;
  { schema; data }

(* Unchecked constructor for operators that guarantee conformance. *)
let trusted schema data = { schema; data }

let of_tuples ?(kind = Schema.Set) schema tuples =
  make { schema with Schema.kind } { Value.kind; tuples }

let tuples t = t.data.Value.tuples
let cardinality t = List.length t.data.Value.tuples
let kind t = t.data.Value.kind
let is_empty t = t.data.Value.tuples = []

let equal a b =
  (* schema names are not part of equality; structure + contents are *)
  Value.equal_table a.data b.data

(* Set-semantic canonicalisation: sorts and dedups Set-kind tables
   recursively (List-kind keep their order). *)
let rec canonicalize_v (v : Value.v) : Value.v =
  match v with
  | Value.Atom _ -> v
  | Value.Table tb -> Value.Table (canonicalize_table tb)

and canonicalize_table (tb : Value.table) : Value.table =
  let tuples = List.map (List.map canonicalize_v) tb.Value.tuples in
  match tb.Value.kind with
  | Schema.List -> { tb with Value.tuples }
  | Schema.Set -> { tb with Value.tuples = Value.dedup tuples }

let canonicalize t = { t with data = canonicalize_table t.data }

let render ?(name = "RESULT") t =
  Value.render_named { Schema.name; table = t.schema } t.data
