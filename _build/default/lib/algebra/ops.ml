(* Operators of the (extended) NF2 algebra.

   Following /JS82, Jae85a, SS86/: the classical relational operators
   generalised to relation-valued attributes, plus NEST and UNNEST as
   the structure-changing pair, plus order-aware operators for the
   "extended" part of the model (lists). *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
open Rel

let set_tuples schema tuples = trusted schema { Value.kind = Schema.Set; tuples = Value.dedup tuples }

let keep_kind (r : Rel.t) schema tuples =
  match Rel.kind r with
  | Schema.Set -> set_tuples schema tuples
  | Schema.List -> trusted { schema with Schema.kind = Schema.List } { Value.kind = Schema.List; tuples }

(* --- selection ----------------------------------------------------- *)

let select (r : Rel.t) pred = keep_kind r r.schema (List.filter pred (Rel.tuples r))

(* --- projection ----------------------------------------------------- *)

(* Project onto named attributes (top-level); set semantics dedup. *)
let project (r : Rel.t) (names : string list) =
  if names = [] then algebra_error "project: empty attribute list";
  let picks =
    List.map
      (fun n ->
        match Schema.find_field r.schema n with
        | Some (i, f) -> (i, f)
        | None -> algebra_error "project: unknown attribute %s" n)
      names
  in
  let schema = { r.schema with Schema.fields = List.map snd picks } in
  let tuples = List.map (fun tup -> List.map (fun (i, _) -> List.nth tup i) picks) (Rel.tuples r) in
  keep_kind r schema tuples

(* Generalised projection: each output attribute is computed by a
   function of the input tuple, with an explicit output field type. *)
let map_project (r : Rel.t) (outs : (Schema.field * (Value.tuple -> Value.v)) list) =
  let schema = { r.schema with Schema.fields = List.map fst outs } in
  let tuples = List.map (fun tup -> List.map (fun (_, f) -> f tup) outs) (Rel.tuples r) in
  keep_kind r schema tuples

let rename (r : Rel.t) (renames : (string * string) list) =
  let fields =
    List.map
      (fun (f : Schema.field) ->
        match List.find_opt (fun (o, _) -> String.uppercase_ascii o = String.uppercase_ascii f.name) renames with
        | Some (_, n) -> { f with Schema.name = n }
        | None -> f)
      r.schema.Schema.fields
  in
  trusted { r.schema with Schema.fields } r.data

(* --- set operations -------------------------------------------------- *)

let same_structure a b =
  (* structural compatibility: same attribute types in order (names of
     the first operand win, as usual) *)
  let rec eq_table (x : Schema.table) (y : Schema.table) =
    x.Schema.kind = y.Schema.kind
    && List.length x.Schema.fields = List.length y.Schema.fields
    && List.for_all2
         (fun (f : Schema.field) (g : Schema.field) ->
           match f.attr, g.attr with
           | Schema.Atomic t1, Schema.Atomic t2 -> t1 = t2
           | Schema.Table t1, Schema.Table t2 -> eq_table t1 t2
           | _ -> false)
         x.Schema.fields y.Schema.fields
  in
  eq_table a.schema b.schema

let check_compatible op a b =
  if not (same_structure a b) then algebra_error "%s: incompatible relation structures" op

let union a b =
  check_compatible "union" a b;
  set_tuples a.schema (Rel.tuples a @ Rel.tuples b)

let difference a b =
  check_compatible "difference" a b;
  let mem tup = List.exists (Value.equal_tuple tup) (Rel.tuples b) in
  set_tuples a.schema (List.filter (fun t -> not (mem t)) (Rel.tuples a))

let intersection a b =
  check_compatible "intersection" a b;
  let mem tup = List.exists (Value.equal_tuple tup) (Rel.tuples b) in
  set_tuples a.schema (List.filter mem (Rel.tuples a))

(* --- product and joins ------------------------------------------------ *)

let disjoint_fields (a : Schema.table) (b : Schema.table) =
  let names t = List.map (fun (f : Schema.field) -> String.uppercase_ascii f.Schema.name) t.Schema.fields in
  List.for_all (fun n -> not (List.mem n (names b))) (names a)

let product a b =
  if not (disjoint_fields a.schema b.schema) then
    algebra_error "product: attribute name clash (rename first)";
  let schema = { Schema.kind = Schema.Set; fields = a.schema.Schema.fields @ b.schema.Schema.fields } in
  let tuples =
    List.concat_map (fun ta -> List.map (fun tb -> ta @ tb) (Rel.tuples b)) (Rel.tuples a)
  in
  set_tuples schema tuples

let join a b ~on =
  if not (disjoint_fields a.schema b.schema) then
    algebra_error "join: attribute name clash (rename first)";
  let schema = { Schema.kind = Schema.Set; fields = a.schema.Schema.fields @ b.schema.Schema.fields } in
  let tuples =
    List.concat_map
      (fun ta -> List.filter_map (fun tb -> if on ta tb then Some (ta @ tb) else None) (Rel.tuples b))
      (Rel.tuples a)
  in
  set_tuples schema tuples

(* Equi-join accelerated with a hash table on the right operand. *)
let equi_join a b ~left ~right =
  if not (disjoint_fields a.schema b.schema) then
    algebra_error "equi_join: attribute name clash (rename first)";
  let li =
    match Schema.find_field a.schema left with
    | Some (i, _) -> i
    | None -> algebra_error "equi_join: unknown attribute %s" left
  in
  let ri =
    match Schema.find_field b.schema right with
    | Some (i, _) -> i
    | None -> algebra_error "equi_join: unknown attribute %s" right
  in
  let index : (string, Value.tuple list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tb ->
      match List.nth tb ri with
      | Value.Atom a ->
          let k = Atom.to_key a in
          Hashtbl.replace index k (tb :: (Option.value ~default:[] (Hashtbl.find_opt index k)))
      | Value.Table _ -> algebra_error "equi_join: join attribute must be atomic")
    (Rel.tuples b);
  let schema = { Schema.kind = Schema.Set; fields = a.schema.Schema.fields @ b.schema.Schema.fields } in
  let tuples =
    List.concat_map
      (fun ta ->
        match List.nth ta li with
        | Value.Atom a ->
            List.map (fun tb -> ta @ tb) (Option.value ~default:[] (Hashtbl.find_opt index (Atom.to_key a)))
        | Value.Table _ -> algebra_error "equi_join: join attribute must be atomic")
      (Rel.tuples a)
  in
  set_tuples schema tuples

(* --- nest / unnest ----------------------------------------------------- *)

(* NEST: group by the complement of [attrs]; the grouped [attrs] become
   one relation-valued attribute called [as_]. *)
let nest (r : Rel.t) ~(attrs : string list) ~(as_ : string) =
  if attrs = [] then algebra_error "nest: empty attribute list";
  let idxs =
    List.map
      (fun n ->
        match Schema.find_field r.schema n with
        | Some (i, _) -> i
        | None -> algebra_error "nest: unknown attribute %s" n)
      attrs
  in
  let nested_fields = List.map (fun i -> List.nth r.schema.Schema.fields i) idxs in
  let keep_fields_i =
    List.filteri (fun i _ -> not (List.mem i idxs)) (List.mapi (fun i _ -> i) r.schema.Schema.fields)
  in
  if keep_fields_i = [] then algebra_error "nest: cannot nest every attribute";
  let keep_fields = List.map (fun i -> List.nth r.schema.Schema.fields i) keep_fields_i in
  let schema =
    {
      Schema.kind = Schema.Set;
      fields = keep_fields @ [ { Schema.name = as_; attr = Schema.Table { Schema.kind = Schema.Set; fields = nested_fields } } ];
    }
  in
  (* group in first-appearance order *)
  let groups : (Value.tuple * Value.tuple list ref) list ref = ref [] in
  List.iter
    (fun tup ->
      let key = List.map (fun i -> List.nth tup i) keep_fields_i in
      let inner = List.map (fun i -> List.nth tup i) idxs in
      match List.find_opt (fun (k, _) -> Value.equal_tuple k key) !groups with
      | Some (_, cell) -> cell := inner :: !cell
      | None -> groups := (key, ref [ inner ]) :: !groups)
    (Rel.tuples r);
  let tuples =
    List.rev_map
      (fun (key, cell) ->
        key @ [ Value.Table { Value.kind = Schema.Set; tuples = Value.dedup (List.rev !cell) } ])
      !groups
  in
  set_tuples schema tuples

(* UNNEST: flatten one relation-valued attribute; tuples whose subtable
   is empty disappear (standard unnest semantics). *)
let unnest (r : Rel.t) ~(attr : string) =
  let i, f =
    match Schema.find_field r.schema attr with
    | Some x -> x
    | None -> algebra_error "unnest: unknown attribute %s" attr
  in
  let sub =
    match f.Schema.attr with
    | Schema.Table sub -> sub
    | Schema.Atomic _ -> algebra_error "unnest: %s is atomic" attr
  in
  let outer_fields = List.filteri (fun j _ -> j <> i) r.schema.Schema.fields in
  let schema = { Schema.kind = Schema.Set; fields = outer_fields @ sub.Schema.fields } in
  let tuples =
    List.concat_map
      (fun tup ->
        let outer = List.filteri (fun j _ -> j <> i) tup in
        match List.nth tup i with
        | Value.Table inner -> List.map (fun sub_tup -> outer @ sub_tup) inner.Value.tuples
        | Value.Atom _ -> algebra_error "unnest: schema mismatch")
      (Rel.tuples r)
  in
  set_tuples schema tuples

(* Nested application: apply an algebra transformation *inside* a
   table-valued attribute of every tuple — the hallmark operator of the
   NF2 algebras (/Jae85b, SS86/ close their algebra under application
   to subrelations).  The function receives each subtable as a relation
   and must return a relation over a fixed schema. *)
let nest_apply (r : Rel.t) ~(attr : string) (f : Rel.t -> Rel.t) : Rel.t =
  let i, fd =
    match Schema.find_field r.schema attr with
    | Some x -> x
    | None -> algebra_error "nest_apply: unknown attribute %s" attr
  in
  let sub =
    match fd.Schema.attr with
    | Schema.Table sub -> sub
    | Schema.Atomic _ -> algebra_error "nest_apply: %s is atomic" attr
  in
  (* determine the output subtable schema from an empty application *)
  let out_sub = (f (Rel.trusted sub { Value.kind = sub.Schema.kind; tuples = [] })).Rel.schema in
  let schema =
    {
      r.schema with
      Schema.fields =
        List.mapi
          (fun j (g : Schema.field) ->
            if j = i then { g with Schema.attr = Schema.Table out_sub } else g)
          r.schema.Schema.fields;
    }
  in
  let tuples =
    List.map
      (fun tup ->
        List.mapi
          (fun j v ->
            if j = i then
              match v with
              | Value.Table inner ->
                  let transformed = f (Rel.trusted sub { inner with Value.kind = sub.Schema.kind }) in
                  Value.Table transformed.Rel.data
              | Value.Atom _ -> algebra_error "nest_apply: schema mismatch"
            else v)
          tup)
      (Rel.tuples r)
  in
  keep_kind r schema tuples

(* --- ordering (lists, the "extended" part) ---------------------------- *)

let order_by (r : Rel.t) ~key =
  let tuples = List.stable_sort (fun a b -> Value.compare_tuple (key a) (key b)) (Rel.tuples r) in
  trusted
    { r.schema with Schema.kind = Schema.List }
    { Value.kind = Schema.List; tuples }

let as_list (r : Rel.t) =
  trusted { r.schema with Schema.kind = Schema.List } { r.data with Value.kind = Schema.List }

let as_set (r : Rel.t) =
  set_tuples { r.schema with Schema.kind = Schema.Set } (Rel.tuples r)

(* 1-based subscript, as in the paper's AUTHORS[1]. *)
let nth (r : Rel.t) i =
  if Rel.kind r <> Schema.List then algebra_error "subscript on an unordered table";
  List.nth_opt (Rel.tuples r) (i - 1)

let limit (r : Rel.t) n = keep_kind r r.schema (List.filteri (fun i _ -> i < n) (Rel.tuples r))

(* --- aggregates --------------------------------------------------------- *)

type agg = Count | Sum | Min | Max | Avg

let aggregate (r : Rel.t) (agg : agg) (attr : string option) : Atom.t =
  match agg, attr with
  | Count, None -> Atom.Int (Rel.cardinality r)
  | Count, Some _ -> Atom.Int (Rel.cardinality r)
  | _, None -> algebra_error "aggregate needs an attribute"
  | _, Some name -> (
      let i =
        match Schema.find_field r.schema name with
        | Some (i, _) -> i
        | None -> algebra_error "aggregate: unknown attribute %s" name
      in
      let nums =
        List.filter_map
          (fun tup ->
            match List.nth tup i with
            | Value.Atom (Atom.Int v) -> Some (float_of_int v, `I)
            | Value.Atom (Atom.Float v) -> Some (v, `F)
            | Value.Atom Atom.Null -> None
            | Value.Atom a -> (
                match agg with
                | Min | Max -> Some (0., `Other a)
                | _ -> algebra_error "aggregate: non-numeric attribute %s" name)
            | Value.Table _ -> algebra_error "aggregate: table-valued attribute %s" name)
          (Rel.tuples r)
      in
      let atoms =
        List.filter_map
          (fun tup -> match List.nth tup i with Value.Atom Atom.Null -> None | Value.Atom a -> Some a | _ -> None)
          (Rel.tuples r)
      in
      match agg with
      | Count -> Atom.Int (List.length atoms)
      | Min -> (
          match atoms with [] -> Atom.Null | a :: rest -> List.fold_left (fun acc x -> if Atom.compare x acc < 0 then x else acc) a rest)
      | Max -> (
          match atoms with [] -> Atom.Null | a :: rest -> List.fold_left (fun acc x -> if Atom.compare x acc > 0 then x else acc) a rest)
      | Sum ->
          let total = List.fold_left (fun acc (v, _) -> acc +. v) 0. nums in
          if List.for_all (fun (_, k) -> k = `I) nums then Atom.Int (int_of_float total) else Atom.Float total
      | Avg ->
          if nums = [] then Atom.Null
          else Atom.Float (List.fold_left (fun acc (v, _) -> acc +. v) 0. nums /. float_of_int (List.length nums)))

(* --- quantifiers over subtables ----------------------------------------- *)

let exists_in (tb : Value.table) pred = List.exists pred tb.Value.tuples
let for_all_in (tb : Value.table) pred = List.for_all pred tb.Value.tuples
