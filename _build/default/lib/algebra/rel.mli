(** Typed in-memory relations: a schema table paired with a value
    table — the currency of the NF² algebra operators and of
    query-language results. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value

type t = { schema : Schema.table; data : Value.table }

exception Algebra_error of string

val algebra_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Checked constructor: kinds must agree, every tuple must conform.
    @raise Value.Value_error / Algebra_error otherwise. *)
val make : Schema.table -> Value.table -> t

(** Unchecked constructor for operators that guarantee conformance. *)
val trusted : Schema.table -> Value.table -> t

(** Build from a named schema's table and a tuple list. *)
val of_tuples : ?kind:Schema.kind -> Schema.table -> Value.tuple list -> t

val tuples : t -> Value.tuple list
val cardinality : t -> int
val kind : t -> Schema.kind
val is_empty : t -> bool

(** Structural + content equality; attribute names are not compared,
    Set-kind contents compare order-insensitively. *)
val equal : t -> t -> bool

(** Sort and dedup Set-kind tables recursively (Lists keep order). *)
val canonicalize : t -> t

val canonicalize_table : Value.table -> Value.table
val canonicalize_v : Value.v -> Value.v

(** Paper-style nested-box rendering with a [{ NAME }] headline. *)
val render : ?name:string -> t -> string
