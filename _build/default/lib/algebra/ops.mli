(** Operators of the (extended) NF² algebra, after Jaeschke/Schek
    (/JS82, Jae85a, SS86/): the classical relational operators
    generalised to relation-valued attributes, NEST/UNNEST as the
    structure-changing pair, and order-aware operators for the
    "extended" part of the model (lists).

    Unless stated otherwise, operators on Set-kind inputs produce
    Set-kind (deduplicated) outputs, and operators on List-kind inputs
    preserve order. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value

(** {1 Selection / projection} *)

val select : Rel.t -> (Value.tuple -> bool) -> Rel.t

(** Project onto named attributes (possibly table-valued).
    @raise Rel.Algebra_error on unknown names or empty list. *)
val project : Rel.t -> string list -> Rel.t

(** Generalised projection: each output field computed from the input
    tuple. *)
val map_project : Rel.t -> (Schema.field * (Value.tuple -> Value.v)) list -> Rel.t

val rename : Rel.t -> (string * string) list -> Rel.t

(** {1 Set operations} — operands must be structurally compatible. *)

val union : Rel.t -> Rel.t -> Rel.t
val difference : Rel.t -> Rel.t -> Rel.t
val intersection : Rel.t -> Rel.t -> Rel.t
val same_structure : Rel.t -> Rel.t -> bool

(** {1 Products and joins} — attribute names must be disjoint
    (use {!rename}). *)

val product : Rel.t -> Rel.t -> Rel.t

(** Theta join by nested loops. *)
val join : Rel.t -> Rel.t -> on:(Value.tuple -> Value.tuple -> bool) -> Rel.t

(** Hash-accelerated equi-join on one atomic attribute per side. *)
val equi_join : Rel.t -> Rel.t -> left:string -> right:string -> Rel.t

(** {1 Nest / unnest} *)

(** [nest r ~attrs ~as_] groups by the complement of [attrs]; the
    grouped attributes become one relation-valued attribute [as_]. *)
val nest : Rel.t -> attrs:string list -> as_:string -> Rel.t

(** [unnest r ~attr] flattens one table-valued attribute; tuples whose
    subtable is empty disappear (standard unnest semantics). *)
val unnest : Rel.t -> attr:string -> Rel.t

(** Nested application: transform the subtable of [attr] inside every
    tuple with an algebra function — the operator that closes the NF²
    algebra under application to subrelations.  The function must be
    schema-uniform (its output schema may not depend on the input
    rows).  @raise Rel.Algebra_error. *)
val nest_apply : Rel.t -> attr:string -> (Rel.t -> Rel.t) -> Rel.t

(** {1 Ordering (lists)} *)

(** Stable sort by a computed key; the result is List-kind. *)
val order_by : Rel.t -> key:(Value.tuple -> Value.tuple) -> Rel.t

val as_list : Rel.t -> Rel.t
val as_set : Rel.t -> Rel.t

(** 1-based subscript (the paper's [AUTHORS\[1\]]); [None] when out of
    range.  @raise Rel.Algebra_error on unordered tables. *)
val nth : Rel.t -> int -> Value.tuple option

val limit : Rel.t -> int -> Rel.t

(** {1 Aggregates} *)

type agg = Count | Sum | Min | Max | Avg

(** [aggregate r agg attr]: [Count] ignores [attr]; numeric aggregates
    skip NULLs; empty inputs yield [Null] (0 for Count). *)
val aggregate : Rel.t -> agg -> string option -> Atom.t

(** {1 Quantifiers over table values} *)

val exists_in : Value.table -> (Value.tuple -> bool) -> bool
val for_all_in : Value.table -> (Value.tuple -> bool) -> bool
