lib/algebra/rel.ml: Fmt List Nf2_model
