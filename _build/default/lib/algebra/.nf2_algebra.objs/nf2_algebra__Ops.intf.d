lib/algebra/ops.mli: Nf2_model Rel
