lib/algebra/ops.ml: Hashtbl List Nf2_model Option Rel String
