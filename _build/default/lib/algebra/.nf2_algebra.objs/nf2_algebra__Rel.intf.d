lib/algebra/rel.mli: Format Nf2_model
