(* Text index for masked search (Section 5 of the paper; the
   Schek/Kropp word-fragment / reference-string method /Sch78, KSW79,
   KW81/).

   Every word of an indexed text attribute is decomposed into fragments
   (character trigrams over the word extended with ^ and $ sentinels).
   A fragment B+-tree maps fragment -> word, and a word B+-tree maps
   word -> hierarchical addresses of the texts containing it.  A masked
   pattern like '*comput*' is answered by:
     1. extracting fragments from the pattern's literal runs,
     2. intersecting their word sets (candidate vocabulary),
     3. verifying the full mask against each candidate word,
     4. collecting the addresses of the surviving words.
   Data pages are never touched. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module OS = Nf2_storage.Object_store
module Tid = Nf2_storage.Tid

type t = {
  path : Schema.path;
  fragments : string Bptree.t; (* fragment -> words *)
  words : OS.hier Bptree.t; (* word -> addresses *)
  store : OS.t;
  schema : Schema.t;
}

let normalize_word w =
  String.lowercase_ascii w
  |> String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else ' ')
  |> String.trim

let words_of_text text =
  String.split_on_char ' ' text
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter_map (fun w ->
         let w = normalize_word w in
         if w = "" then None else Some w)
  |> List.concat_map (fun w -> String.split_on_char ' ' w)
  |> List.filter (fun w -> w <> "")

(* Trigrams over ^word$. *)
let fragments_of_word w =
  let ext = "^" ^ w ^ "$" in
  let n = String.length ext in
  if n <= 3 then [ ext ]
  else List.init (n - 2) (fun i -> String.sub ext i 3)

let mem_word t w = Bptree.mem t.words w

let index_word t w (addr : OS.hier) =
  let fresh = not (mem_word t w) in
  Bptree.insert t.words ~key:w addr;
  if fresh then List.iter (fun fr -> Bptree.insert t.fragments ~key:fr w) (fragments_of_word w)

let insert_object t (root : Tid.t) =
  let entries = OS.index_entries t.store t.schema root t.path in
  List.iter
    (fun (atom, hier) ->
      match atom with
      | Atom.Str text -> List.iter (fun w -> index_word t w hier) (words_of_text text)
      | _ -> ())
    entries

let remove_object t (root : Tid.t) =
  let entries = OS.index_entries t.store t.schema root t.path in
  List.iter
    (fun (atom, _) ->
      match atom with
      | Atom.Str text ->
          List.iter
            (fun w -> Bptree.remove t.words ~key:w (fun h -> Tid.equal h.OS.root root))
            (words_of_text text)
      | _ -> ())
    entries

let create store schema path =
  (match Schema.resolve_path schema.Schema.table path with
  | Schema.Atomic Atom.Tstring -> ()
  | _ -> invalid_arg "Text_index.create: path must end at a TEXT attribute");
  let t = { path; fragments = Bptree.create (); words = Bptree.create (); store; schema } in
  List.iter (insert_object t) (OS.roots store);
  t

let path t = t.path

let vocabulary t = Bptree.keys t.words

(* Candidate words for a mask, from fragment intersection.  Literal
   runs shorter than a trigram contribute prefix scans over the
   fragment tree.  A pattern with no usable literal (e.g. '*') falls
   back to the whole vocabulary — still index-only. *)
let candidates t (mask : Masked.t) : string list =
  let lits = Masked.literals mask in
  (* fragments fully inside a literal run are exact; if the literal is
     anchored we can include sentinel fragments *)
  let frags_of_literal anchored_start anchored_end lit =
    let ext =
      (if anchored_start then "^" else "") ^ lit ^ if anchored_end then "$" else ""
    in
    let n = String.length ext in
    if n < 3 then [] else List.init (n - 2) (fun i -> String.sub ext i 3)
  in
  let anchored_pre = Masked.anchored_prefix mask <> None in
  let anchored_suf = Masked.anchored_suffix mask <> None in
  let frag_sets =
    List.mapi
      (fun i lit ->
        let first = i = 0 and last = i = List.length lits - 1 in
        frags_of_literal (first && anchored_pre) (last && anchored_suf) lit)
      lits
    |> List.concat
  in
  match frag_sets with
  | [] -> vocabulary t
  | frags ->
      let word_sets = List.map (fun fr -> Bptree.find t.fragments fr) frags in
      (* intersect; postings are lists of words *)
      let module SS = Set.Make (String) in
      let sets = List.map SS.of_list word_sets in
      (match sets with
      | [] -> []
      | s :: rest -> SS.elements (List.fold_left SS.inter s rest))

(* Masked search: returns (word, addresses) for every vocabulary word
   matching the mask. *)
let search t (pattern : string) : (string * OS.hier list) list =
  let mask = Masked.compile pattern in
  candidates t mask
  |> List.filter (fun w -> Masked.matches mask w)
  |> List.map (fun w -> (w, Bptree.find t.words w))

(* Root TIDs of objects whose indexed text matches the mask. *)
let roots_matching t pattern : Tid.t list =
  search t pattern
  |> List.concat_map (fun (_, hs) -> List.map (fun h -> h.OS.root) hs)
  |> List.sort_uniq Tid.compare
