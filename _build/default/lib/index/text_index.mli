(** Text index for masked search (Section 5 of the paper; the
    Schek/Kropp word-fragment / reference-string method).

    Words of the indexed text attribute are decomposed into character
    trigrams over [^word$]; a fragment tree maps fragment -> words and
    a word tree maps word -> hierarchical addresses.  Masked patterns
    such as ['*comput*'] are answered by intersecting fragment posting
    sets, verifying the mask on the candidate words, and returning the
    addresses — without touching data pages. *)

module Schema = Nf2_model.Schema
module OS = Nf2_storage.Object_store
module Tid = Nf2_storage.Tid

type t

(** Build over every object in the store; the path must end at a TEXT
    attribute.  @raise Invalid_argument. *)
val create : OS.t -> Schema.t -> Schema.path -> t

val insert_object : t -> Tid.t -> unit
val remove_object : t -> Tid.t -> unit

val path : t -> Schema.path

(** All indexed words (sorted). *)
val vocabulary : t -> string list

(** Words matching a compiled mask, via fragment intersection. *)
val candidates : t -> Masked.t -> string list

(** [(word, addresses)] for every vocabulary word matching the mask. *)
val search : t -> string -> (string * OS.hier list) list

(** Root TIDs of objects whose indexed text matches the mask. *)
val roots_matching : t -> string -> Tid.t list

(** Word normalisation/fragment helpers (exposed for tests). *)
val words_of_text : string -> string list

val fragments_of_word : string -> string list
