lib/index/bptree.mli:
