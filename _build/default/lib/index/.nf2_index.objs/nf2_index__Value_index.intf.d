lib/index/value_index.mli: Nf2_model Nf2_storage
