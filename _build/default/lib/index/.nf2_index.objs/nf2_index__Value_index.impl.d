lib/index/value_index.ml: Bptree List Nf2_model Nf2_storage Option
