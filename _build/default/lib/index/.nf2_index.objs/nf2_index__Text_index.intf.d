lib/index/text_index.mli: Masked Nf2_model Nf2_storage
