lib/index/text_index.ml: Bptree List Masked Nf2_model Nf2_storage Set String
