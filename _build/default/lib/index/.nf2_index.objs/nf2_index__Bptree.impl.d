lib/index/bptree.ml: Bytes Char Int List String
