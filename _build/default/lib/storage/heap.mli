(** Heap file: an unordered record store over a set of pages, with
    stable TIDs (via forward pointers) and an in-memory free-space map.

    Used for flat (1NF) tables, for root MD subtuples of complex
    objects, for version deltas, and by the Lorie-style baseline. *)

type t

val create : Buffer_pool.t -> t

(** Re-attach a heap to pages persisted earlier (free-space map is
    rebuilt from the page contents). *)
val restore : Buffer_pool.t -> pages:int list -> t

(** Pages owned by this heap, newest first. *)
val pages : t -> int list

(** Store a record; returns its stable TID. *)
val insert : t -> string -> Tid.t

(** Read a record, following at most one forward hop; [None] when
    deleted/absent. *)
val read : t -> Tid.t -> string option

(** @raise Invalid_argument when absent. *)
val read_exn : t -> Tid.t -> string

(** Delete a record (and its spilled copy, if forwarded). *)
val delete : t -> Tid.t -> unit

(** Update in place when possible; otherwise spill the payload to
    another page and leave a forward pointer — the TID never changes. *)
val update : t -> Tid.t -> string -> unit

(** Iterate live records, each exactly once, under its home TID. *)
val iter : t -> (Tid.t -> string -> unit) -> unit

val fold : t -> ('a -> Tid.t -> string -> 'a) -> 'a -> 'a
val count : t -> int
