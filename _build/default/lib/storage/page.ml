(* Slotted-page layout, operating in place on a page image (Bytes.t).

     +--------+--------------------------------+----------------+
     | header |  records (growing up) ...free  | slot dir (down)|
     +--------+--------------------------------+----------------+

   header   : [u16 nslots][u16 free_off]
   slot i   : 4 bytes at (page_size - 4*(i+1)) = [u16 off][u16 len]
              off = 0xFFFF  -> slot free (reusable)

   Records are never larger than [max_record_size]. Deleting a record
   keeps its slot number reserved so TIDs/Mini-TIDs of other records
   stay valid; freed slots are reused by later inserts. *)

let header_size = 4
let slot_size = 4
let free_slot_mark = 0xFFFF

let nslots buf = Codec.read_u16 buf 0
let free_off buf = Codec.read_u16 buf 2
let set_nslots buf v = Codec.blit_u16 buf 0 v
let set_free_off buf v = Codec.blit_u16 buf 2 v

let init buf =
  set_nslots buf 0;
  set_free_off buf header_size

let slot_pos buf i = Bytes.length buf - (slot_size * (i + 1))

let slot_off buf i = Codec.read_u16 buf (slot_pos buf i)
let slot_len buf i = Codec.read_u16 buf (slot_pos buf i + 2)

let set_slot buf i ~off ~len =
  Codec.blit_u16 buf (slot_pos buf i) off;
  Codec.blit_u16 buf (slot_pos buf i + 2) len

let slot_used buf i = slot_off buf i <> free_slot_mark

let max_record_size buf =
  (* one record, one slot, nothing else on the page *)
  Bytes.length buf - header_size - slot_size

(* Contiguous free space between record area and slot directory. *)
let contiguous_free buf = Bytes.length buf - (slot_size * nslots buf) - free_off buf

(* Total reclaimable free space (after compaction), not counting the
   slot entry a brand-new record would need. *)
let usable_free buf =
  let used = ref 0 in
  for i = 0 to nslots buf - 1 do
    if slot_used buf i then used := !used + slot_len buf i
  done;
  Bytes.length buf - header_size - (slot_size * nslots buf) - !used

let find_free_slot buf =
  let n = nslots buf in
  let rec go i = if i >= n then None else if not (slot_used buf i) then Some i else go (i + 1) in
  go 0

(* Rewrite the record area compactly, preserving slot numbers. *)
let compact buf =
  let n = nslots buf in
  let records =
    List.init n (fun i ->
        if slot_used buf i then Some (Bytes.sub buf (slot_off buf i) (slot_len buf i)) else None)
  in
  let off = ref header_size in
  List.iteri
    (fun i r ->
      match r with
      | None -> ()
      | Some data ->
          Bytes.blit data 0 buf !off (Bytes.length data);
          set_slot buf i ~off:!off ~len:(Bytes.length data);
          off := !off + Bytes.length data)
    records;
  set_free_off buf !off

(* Space check for inserting a record of [len] bytes. *)
let can_insert buf len =
  let needs_slot = match find_free_slot buf with Some _ -> false | None -> true in
  let slot_cost = if needs_slot then slot_size else 0 in
  usable_free buf - slot_cost >= len

let insert buf (data : string) =
  let len = String.length data in
  if not (can_insert buf len) then None
  else begin
    let slot =
      match find_free_slot buf with
      | Some i -> i
      | None ->
          (* the new slot directory entry lives at the end of the page;
             compact first if the record area currently extends into it *)
          let i = nslots buf in
          if free_off buf > Bytes.length buf - (slot_size * (i + 1)) then compact buf;
          set_nslots buf (i + 1);
          set_slot buf i ~off:free_slot_mark ~len:0;
          i
    in
    if contiguous_free buf < len then compact buf;
    let off = free_off buf in
    Bytes.blit_string data 0 buf off len;
    set_slot buf slot ~off ~len;
    set_free_off buf (off + len);
    Some slot
  end

let read buf slot =
  if slot < 0 || slot >= nslots buf || not (slot_used buf slot) then None
  else Some (Bytes.sub_string buf (slot_off buf slot) (slot_len buf slot))

let delete buf slot =
  if slot >= 0 && slot < nslots buf && slot_used buf slot then begin
    set_slot buf slot ~off:free_slot_mark ~len:0;
    true
  end
  else false

(* In-place update; returns false if the new contents cannot fit on
   this page even after compaction (caller must spill). *)
let update buf slot (data : string) =
  if slot < 0 || slot >= nslots buf || not (slot_used buf slot) then
    invalid_arg "Page.update: no such record";
  let len = String.length data in
  let old_len = slot_len buf slot in
  if len <= old_len then begin
    (* shrink in place *)
    Bytes.blit_string data 0 buf (slot_off buf slot) len;
    set_slot buf slot ~off:(slot_off buf slot) ~len;
    true
  end
  else begin
    (* would the page hold it if we drop the old copy? *)
    let free_with_old_dropped = usable_free buf + old_len in
    if free_with_old_dropped < len then false
    else begin
      set_slot buf slot ~off:free_slot_mark ~len:0;
      if contiguous_free buf < len then compact buf;
      let off = free_off buf in
      Bytes.blit_string data 0 buf off len;
      set_slot buf slot ~off ~len;
      set_free_off buf (off + len);
      true
    end
  end

let live_records buf =
  let acc = ref [] in
  for i = nslots buf - 1 downto 0 do
    if slot_used buf i then acc := i :: !acc
  done;
  !acc

let used_bytes buf =
  let used = ref header_size in
  for i = 0 to nslots buf - 1 do
    used := !used + slot_size + if slot_used buf i then slot_len buf i else 0
  done;
  !used
