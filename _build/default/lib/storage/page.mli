(** Slotted-page layout, operating in place on a page image.

    {v
    +--------+-------------------------------+-----------------+
    | header |  records (grow up) ... free   | slot dir (down) |
    +--------+-------------------------------+-----------------+
    v}

    Slot numbers are stable: deletion frees a slot for reuse but never
    renumbers others, so TIDs and Mini-TIDs stay valid.  Records never
    exceed one page at this layer (larger payloads are chunked by the
    heap / object store). *)

val header_size : int
val slot_size : int

(** Initialise an empty page image. *)
val init : Bytes.t -> unit

val nslots : Bytes.t -> int

(** Upper bound for a single record on an empty page. *)
val max_record_size : Bytes.t -> int

(** Total reclaimable free space (counting compaction). *)
val usable_free : Bytes.t -> int

(** Contiguous free space without compaction. *)
val contiguous_free : Bytes.t -> int

val can_insert : Bytes.t -> int -> bool

(** Insert a record; returns its slot, or [None] when it cannot fit
    even after compaction. *)
val insert : Bytes.t -> string -> int option

(** Read a record; [None] for free/unknown slots. *)
val read : Bytes.t -> int -> string option

(** Free a slot (keeping its number reserved); false if already free. *)
val delete : Bytes.t -> int -> bool

(** In-place update (compacting if needed); false when the new contents
    cannot fit on this page — the caller must spill.
    @raise Invalid_argument on free slots. *)
val update : Bytes.t -> int -> string -> bool

(** Occupied slot numbers in ascending order. *)
val live_records : Bytes.t -> int list

val used_bytes : Bytes.t -> int

(** Rewrite the record area compactly, preserving slot numbers. *)
val compact : Bytes.t -> unit

val slot_used : Bytes.t -> int -> bool
