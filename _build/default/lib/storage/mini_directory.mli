(** Storage-structure alternatives for Mini Directories (Fig 6 of the
    paper) and their analytic properties.  The actual construction
    lives in {!Object_store}; this module holds the layout type, the
    closed-form MD-subtuple counts the paper argues about, and a
    printable logical view of an object's MD tree. *)

(** The three alternatives of Fig 6:
    - [SS1]: MD subtuples for both subtables and complex subobjects;
    - [SS2]: only for complex subobjects;
    - [SS3]: only for subtables (AIM-II's choice). *)
type layout = SS1 | SS2 | SS3

val layout_name : layout -> string
val all_layouts : layout list

(** MD subtuples of one object from its structural counts:
    SS1 = 1 + subtables + complex; SS2 = 1 + complex;
    SS3 = 1 + subtables.  The order SS1 ≥ SS3 ≥ SS2 follows because
    every complex subobject contains at least one subtable. *)
val md_subtuple_count : layout -> subtables:int -> complex_subobjects:int -> int

(** Printable logical MD tree (Fig 6a/6b/6c). *)
type view = Md of { label : string; entries : view_entry list list }

and view_entry = Vd of string | Vc of view

val render_view : ?indent:int -> view -> string

(** Number of MD nodes in a view (cross-check against {!md_subtuple_count}). *)
val count_view_md : view -> int
