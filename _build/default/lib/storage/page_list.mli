(** Page lists: the local address space of a complex object
    (Section 4.1 of the paper).

    A page list maps local page numbers (positions) to database page
    numbers.  Removal leaves a gap and additions reuse gaps before
    extending at the end, so every existing Mini-TID stays valid. *)

type t

val create : unit -> t

(** Length including gaps. *)
val length : t -> int

(** Register a database page; returns its (gap-reusing) position. *)
val add : t -> int -> int

(** Leave a gap at the position.  @raise Invalid_argument on gaps. *)
val remove : t -> lpage:int -> unit

(** Database page at a position.  @raise Invalid_argument on gaps. *)
val resolve : t -> int -> int

(** Replace the page at a position, keeping the position — the
    relocation (check-out) primitive. *)
val replace : t -> lpage:int -> page:int -> unit

val position_of : t -> int -> int option

(** Live (position, page) pairs in position order. *)
val entries : t -> (int * int) list

val live_pages : t -> int list
val gaps : t -> int

val encode : Codec.sink -> t -> unit
val decode : Codec.source -> t
val copy : t -> t
