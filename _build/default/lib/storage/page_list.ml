(* Page lists: the local address space of a complex object.

   The page list is stored in the object's root MD subtuple and maps
   local page numbers (positions in the list) to database page numbers.
   Removal leaves a gap rather than shifting entries, and additions
   reuse gaps before extending at the end — this keeps every existing
   Mini-TID stable (Section 4.1). *)

type t = { mutable entries : int array; mutable len : int }

let gap = -1

let create () = { entries = Array.make 4 gap; len = 0 }

let length t = t.len

let grow t =
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (max 8 (2 * Array.length t.entries)) gap in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end

(* Register a database page; returns its local page number. *)
let add t page =
  let rec find_gap i = if i >= t.len then None else if t.entries.(i) = gap then Some i else find_gap (i + 1) in
  match find_gap 0 with
  | Some i ->
      t.entries.(i) <- page;
      i
  | None ->
      grow t;
      t.entries.(t.len) <- page;
      t.len <- t.len + 1;
      t.len - 1

let remove t ~lpage =
  if lpage < 0 || lpage >= t.len || t.entries.(lpage) = gap then
    invalid_arg "Page_list.remove: no such entry";
  t.entries.(lpage) <- gap

let resolve t lpage =
  if lpage < 0 || lpage >= t.len then invalid_arg "Page_list.resolve: out of range";
  match t.entries.(lpage) with
  | -1 -> invalid_arg "Page_list.resolve: gap"
  | page -> page

(* Replace the database page at a position, keeping the position (used
   by object relocation / check-out: Mini-TIDs stay valid). *)
let replace t ~lpage ~page =
  if lpage < 0 || lpage >= t.len || t.entries.(lpage) = gap then
    invalid_arg "Page_list.replace: no such entry";
  t.entries.(lpage) <- page

let position_of t page =
  let rec go i = if i >= t.len then None else if t.entries.(i) = page then Some i else go (i + 1) in
  go 0

(* Live (position, page) pairs in position order. *)
let entries t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if t.entries.(i) <> gap then acc := (i, t.entries.(i)) :: !acc
  done;
  !acc

let live_pages t = List.map snd (entries t)
let gaps t = t.len - List.length (entries t)

let encode b t =
  Codec.put_uvarint b t.len;
  for i = 0 to t.len - 1 do
    Codec.put_varint b t.entries.(i)
  done

let decode src =
  let len = Codec.get_uvarint src in
  let t = { entries = Array.make (max 4 len) gap; len } in
  for i = 0 to len - 1 do
    t.entries.(i) <- Codec.get_varint src
  done;
  t

let copy t = { entries = Array.copy t.entries; len = t.len }
