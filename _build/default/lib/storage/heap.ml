(* Heap file: an unordered record store over a set of pages, with
   stable TIDs (via forwarding), records larger than a page (via chunk
   chains), and an in-memory free-space map.  Used for flat (1NF)
   tables, for root MD subtuples of complex objects, for version
   deltas, and by the Lorie-style baseline. *)

type t = {
  pool : Buffer_pool.t;
  mutable pages : int list; (* newest first *)
  fsm : (int, int) Hashtbl.t; (* page -> usable free bytes *)
}

let create pool = { pool; pages = []; fsm = Hashtbl.create 64 }

(* Re-attach a heap to pages persisted earlier; the free-space map is
   rebuilt by inspecting each page. *)
let restore pool ~pages =
  let t = { pool; pages; fsm = Hashtbl.create 64 } in
  List.iter
    (fun page -> Buffer_pool.read pool page (fun buf -> Hashtbl.replace t.fsm page (Page.usable_free buf)))
    pages;
  t

let pages t = t.pages

let note_free t page buf = Hashtbl.replace t.fsm page (Page.usable_free buf)

let page_size t = Disk.page_size (Buffer_pool.disk t.pool)

(* Largest whole-record byte budget of one page. *)
let record_budget t = page_size t - Page.header_size - Page.slot_size

(* Largest payload that still encodes into a single Plain/Spilled
   record (envelope: tag + length varint, padded to min_size). *)
let max_single_payload t = record_budget t - 8

let max_chunk_part t = record_budget t - Record.chunk_overhead

let alloc_page t =
  let page = Buffer_pool.alloc t.pool in
  Buffer_pool.write t.pool page (fun buf ->
      Page.init buf;
      note_free t page buf);
  t.pages <- page :: t.pages;
  page

(* First-fit over pages believed to have room, else a fresh page. *)
let insert_record t (record : Record.t) : Tid.t =
  let encoded = Record.encode record in
  let need = String.length encoded + Page.slot_size in
  let candidate =
    List.find_opt (fun p -> match Hashtbl.find_opt t.fsm p with Some f -> f >= need | None -> false) t.pages
  in
  let page = match candidate with Some p -> p | None -> alloc_page t in
  let slot =
    Buffer_pool.write t.pool page (fun buf ->
        let s = Page.insert buf encoded in
        note_free t page buf;
        s)
  in
  match slot with
  | Some slot -> { Tid.page; slot }
  | None ->
      (* stale fsm entry; retry on a guaranteed-fresh page *)
      let page = alloc_page t in
      let slot =
        Buffer_pool.write t.pool page (fun buf ->
            let s = Page.insert buf encoded in
            note_free t page buf;
            s)
      in
      (match slot with
      | Some slot -> { Tid.page; slot }
      | None -> failwith "Heap.insert: record larger than a page")

(* Split a payload into chunk parts. *)
let split_parts t payload =
  let part = max_chunk_part t in
  let n = String.length payload in
  let rec go off acc =
    if off >= n then List.rev acc
    else
      let len = min part (n - off) in
      go (off + len) (String.sub payload off len :: acc)
  in
  if n = 0 then [ "" ] else go 0 []

(* Store a logical record, chunking when needed.  [head] controls the
   envelope of the head record for single-part payloads and the
   [scan_root] bit of the head chunk for multi-part ones. *)
let insert_logical t ~(head : [ `Plain | `Spilled ]) (payload : string) : Tid.t =
  if String.length payload <= max_single_payload t then
    insert_record t (match head with `Plain -> Record.Plain payload | `Spilled -> Record.Spilled payload)
  else begin
    let parts = split_parts t payload in
    (* write continuation chunks back to front *)
    let rec write_tail = function
      | [] -> None
      | part :: rest ->
          let next = write_tail rest in
          Some (insert_record t (Record.Chunk { part; next; scan_root = false }))
    in
    match parts with
    | [] -> assert false
    | first :: rest ->
        let next = write_tail rest in
        insert_record t (Record.Chunk { part = first; next; scan_root = head = `Plain })
  end

let insert t payload = insert_logical t ~head:`Plain payload

let read_raw t (tid : Tid.t) =
  Buffer_pool.read t.pool tid.page (fun buf -> Page.read buf tid.slot)

(* Assemble a chunk chain starting at an already-decoded head chunk. *)
let rec assemble_chain t part next =
  match next with
  | None -> part
  | Some tid -> (
      match read_raw t tid with
      | Some s -> (
          match Record.decode s with
          | Record.Chunk { part = p2; next = n2; _ } -> part ^ assemble_chain t p2 n2
          | _ -> failwith "Heap: chunk chain corrupted")
      | None -> failwith "Heap: dangling chunk pointer")

(* Follows at most one forward hop (forwards never chain). *)
let resolve t (tid : Tid.t) : (Tid.t * string) option =
  match read_raw t tid with
  | None -> None
  | Some s -> (
      match Record.decode s with
      | Record.Plain payload | Record.Spilled payload -> Some (tid, payload)
      | Record.Chunk { part; next; _ } -> Some (tid, assemble_chain t part next)
      | Record.Forward target -> (
          match read_raw t target with
          | Some s2 -> (
              match Record.decode s2 with
              | Record.Spilled payload | Record.Plain payload -> Some (target, payload)
              | Record.Chunk { part; next; _ } -> Some (target, assemble_chain t part next)
              | Record.Forward _ -> failwith "Heap: chained forward")
          | None -> None))

let read t tid = Option.map snd (resolve t tid)

let read_exn t tid =
  match read t tid with
  | Some payload -> payload
  | None -> invalid_arg (Printf.sprintf "Heap.read: no record at %s" (Tid.to_string tid))

let kill t (at : Tid.t) =
  Buffer_pool.write t.pool at.Tid.page (fun buf ->
      ignore (Page.delete buf at.Tid.slot);
      note_free t at.Tid.page buf)

(* Free the continuation chunks reachable from a decoded record. *)
let rec free_tail t = function
  | None -> ()
  | Some tid ->
      (match read_raw t tid with
      | Some s -> (
          match Record.decode s with
          | Record.Chunk { next; _ } -> free_tail t next
          | _ -> ())
      | None -> ());
      kill t tid

let delete t (tid : Tid.t) =
  match read_raw t tid with
  | None -> ()
  | Some s ->
      (match Record.decode s with
      | Record.Plain _ | Record.Spilled _ -> ()
      | Record.Chunk { next; _ } -> free_tail t next
      | Record.Forward target ->
          (match read_raw t target with
          | Some s2 -> (
              match Record.decode s2 with
              | Record.Chunk { next; _ } -> free_tail t next
              | _ -> ())
          | None -> ());
          kill t target);
      kill t tid

(* Update in place when possible; otherwise spill the payload (possibly
   chunked) to other pages and leave a forward pointer in the home
   slot.  The record's TID never changes. *)
let update t (tid : Tid.t) (payload : string) =
  let home =
    match read_raw t tid with
    | Some s -> Record.decode s
    | None -> invalid_arg (Printf.sprintf "Heap.update: no record at %s" (Tid.to_string tid))
  in
  (* where the payload currently lives, and its decoded form *)
  let target, target_rec =
    match home with
    | Record.Forward target -> (
        match read_raw t target with
        | Some s -> (target, Record.decode s)
        | None -> failwith "Heap.update: dangling forward")
    | r -> (tid, r)
  in
  (* free old continuation chunks — the new contents replace the chain *)
  (match target_rec with Record.Chunk { next; _ } -> free_tail t next | _ -> ());
  let already_spilled = not (Tid.equal target tid) in
  let fits_single = String.length payload <= max_single_payload t in
  let try_in_place () =
    if not fits_single then false
    else
      let encoded =
        Record.encode (if already_spilled then Record.Spilled payload else Record.Plain payload)
      in
      Buffer_pool.write t.pool target.Tid.page (fun buf ->
          let ok = Page.update buf target.Tid.slot encoded in
          note_free t target.Tid.page buf;
          ok)
  in
  if not (try_in_place ()) then begin
    (* drop the old copy at [target] (unless it is the home slot, which
       must become the forward pointer) *)
    if already_spilled then kill t target;
    let spill_tid = insert_logical t ~head:`Spilled payload in
    let fwd = Record.encode (Record.Forward spill_tid) in
    let ok =
      Buffer_pool.write t.pool tid.Tid.page (fun buf ->
          let ok = Page.update buf tid.Tid.slot fwd in
          note_free t tid.Tid.page buf;
          ok)
    in
    if not ok then failwith "Heap.update: forward pointer does not fit"
  end

(* Iterate live logical records (skipping spilled targets and
   continuation chunks): each record exactly once under its home TID. *)
let iter t fn =
  List.iter
    (fun page ->
      let records =
        Buffer_pool.read t.pool page (fun buf ->
            List.filter_map
              (fun slot -> Option.map (fun s -> (slot, s)) (Page.read buf slot))
              (Page.live_records buf))
      in
      List.iter
        (fun (slot, s) ->
          match Record.decode s with
          | Record.Plain payload -> fn { Tid.page; slot } payload
          | Record.Chunk { part; next; scan_root = true } ->
              fn { Tid.page; slot } (assemble_chain t part next)
          | Record.Chunk _ -> ()
          | Record.Forward target -> (
              match read_raw t target with
              | Some s2 -> (
                  match Record.decode s2 with
                  | Record.Spilled payload | Record.Plain payload -> fn { Tid.page; slot } payload
                  | Record.Chunk { part; next; _ } -> fn { Tid.page; slot } (assemble_chain t part next)
                  | Record.Forward _ -> ())
              | None -> ())
          | Record.Spilled _ -> ())
        records)
    (List.rev t.pages)

let fold t fn init =
  let acc = ref init in
  iter t (fun tid payload -> acc := fn !acc tid payload);
  !acc

let count t = fold t (fun n _ _ -> n + 1) 0
