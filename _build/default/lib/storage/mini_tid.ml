(* Mini-TIDs: local addresses valid inside one complex object.  The
   [lpage] component is an index into the object's page list; [slot] is
   the slot number inside the referenced page.  Because page lists keep
   gaps when pages are removed, a Mini-TID never changes as long as its
   subtuple exists (pointer stability, Section 4.1). *)

type t = { lpage : int; slot : int }

let compare a b =
  match Int.compare a.lpage b.lpage with 0 -> Int.compare a.slot b.slot | c -> c

let equal a b = compare a b = 0
let to_string t = Printf.sprintf "%d:%d" t.lpage t.slot
let pp fmt t = Format.pp_print_string fmt (to_string t)

let encode b t =
  Codec.put_uvarint b t.lpage;
  Codec.put_uvarint b t.slot

let decode src =
  let lpage = Codec.get_uvarint src in
  let slot = Codec.get_uvarint src in
  { lpage; slot }

let encoded_size t =
  let b = Codec.create_sink () in
  encode b t;
  String.length (Codec.contents b)
