(** Tuple identifiers: global subtuple addresses — database page number
    plus slot number, exactly as in System R.  Contrast {!Mini_tid}. *)

type t = { page : int; slot : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val encode : Codec.sink -> t -> unit
val decode : Codec.source -> t

(** Encoded size in bytes (TID vs Mini-TID space comparison). *)
val encoded_size : t -> int
