(* Simulated disk: a growable array of fixed-size pages with physical
   I/O accounting.

   The 1986 prototype ran against real DASD; here the cost model that
   matters for the paper's comparative claims is the number of page
   reads and writes, which we count faithfully.  All page content
   access must go through the buffer pool.

   For the recovery subsystem the disk is also the physical fault
   surface: an optional write hook (installed by {!Faulty_disk}) can
   truncate a page write mid-flight and kill the simulated process, and
   each page carries the LSN of the last log record covering its
   on-disk image. *)

exception Crash of string

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type t = {
  page_size : int;
  mutable pages : Bytes.t array; (* physical page images *)
  mutable page_lsns : int array; (* LSN stamped on the last durable write of each page *)
  mutable npages : int;
  stats : stats;
  (* Fault injection: called on every physical write.  [None] proceeds
     normally; [Some n] applies only the first [n] bytes and then
     raises {!Crash} — the simulated machine dies mid-write. *)
  mutable write_hook : (int -> Bytes.t -> int option) option;
}

let create ?(page_size = 4096) () =
  if page_size < 64 then invalid_arg "Disk.create: page_size too small";
  {
    page_size;
    pages = Array.make 16 Bytes.empty;
    page_lsns = Array.make 16 0;
    npages = 0;
    stats = { reads = 0; writes = 0; allocs = 0 };
    write_hook = None;
  }

let page_size t = t.page_size
let npages t = t.npages
let stats t = t.stats

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.allocs <- 0

let set_write_hook t hook = t.write_hook <- hook

let alloc t =
  if t.npages = Array.length t.pages then begin
    let bigger = Array.make (2 * Array.length t.pages) Bytes.empty in
    Array.blit t.pages 0 bigger 0 t.npages;
    t.pages <- bigger;
    let bigger_lsns = Array.make (2 * Array.length t.page_lsns) 0 in
    Array.blit t.page_lsns 0 bigger_lsns 0 t.npages;
    t.page_lsns <- bigger_lsns
  end;
  t.pages.(t.npages) <- Bytes.make t.page_size '\000';
  t.page_lsns.(t.npages) <- 0;
  t.stats.allocs <- t.stats.allocs + 1;
  t.npages <- t.npages + 1;
  t.npages - 1

let check_page t page =
  if page < 0 || page >= t.npages then invalid_arg (Printf.sprintf "Disk: page %d out of range" page)

(* Physical read: copies the page image into [dst]. *)
let read_into t page dst =
  check_page t page;
  t.stats.reads <- t.stats.reads + 1;
  Bytes.blit t.pages.(page) 0 dst 0 t.page_size

(* Physical write: copies [src] onto the page image.  [lsn], when
   given, stamps the page with the log record covering this image.
   An armed write hook may tear the write and crash. *)
let write_from ?(lsn = 0) t page src =
  check_page t page;
  t.stats.writes <- t.stats.writes + 1;
  let outcome = match t.write_hook with None -> None | Some hook -> hook page src in
  match outcome with
  | None ->
      Bytes.blit src 0 t.pages.(page) 0 t.page_size;
      if lsn > 0 then t.page_lsns.(page) <- lsn
  | Some n ->
      let n = max 0 (min n t.page_size) in
      Bytes.blit src 0 t.pages.(page) 0 n;
      raise
        (Crash
           (Printf.sprintf "simulated crash writing page %d (%d/%d bytes reached disk)" page n
              t.page_size))

let page_lsn t page =
  check_page t page;
  t.page_lsns.(page)

let total_bytes t = t.npages * t.page_size

(* Persistence: copy out / reconstruct the physical page images. *)
let export_pages t = Array.init t.npages (fun i -> Bytes.copy t.pages.(i))

let of_pages ~page_size (pages : Bytes.t array) =
  if page_size < 64 then invalid_arg "Disk.of_pages: page_size too small";
  Array.iter
    (fun p -> if Bytes.length p <> page_size then invalid_arg "Disk.of_pages: wrong page size")
    pages;
  {
    page_size;
    pages = Array.map Bytes.copy pages;
    page_lsns = Array.make (max 1 (Array.length pages)) 0;
    npages = Array.length pages;
    stats = { reads = 0; writes = 0; allocs = 0 };
    write_hook = None;
  }
