(* Subtuple codecs.

   Data subtuples carry the first-level atomic attribute values of a
   (sub)object and no structural information at all (Section 4.1).
   MD subtuples carry only structure: a list of *sections*, each a list
   of D (data) or C (child MD) pointers.  The three storage structures
   SS1/SS2/SS3 differ only in which logical nodes get their own MD
   subtuple and how sections are used; the encoding is shared:

     SS1  root         = 1 section  [D own-data; C subtable-MD ...]
          subtable MD  = 1 section per element: [D data] | [C subobject-MD]
          subobject MD = 1 section  [D own-data; C subtable-MD ...]
     SS2  root / subobject MD = section 0 [D own-data];
          then one section per table attribute, one entry per element
          ([D data] for flat elements, [C subobject-MD] for complex)
     SS3  root         = 1 section  [D own-data; C subtable-MD ...]
          subtable MD  = 1 section per element:
            flat element    -> [D data]
            complex element -> [D element-data; C nested-subtable-MD ...]

   The root MD subtuple additionally stores the page list. *)

type entry = D of Mini_tid.t | C of Mini_tid.t

type sections = entry list list

let encode_data (atoms : Nf2_model.Atom.t list) =
  let b = Codec.create_sink () in
  Codec.put_uvarint b (List.length atoms);
  List.iter (Nf2_model.Atom.encode b) atoms;
  Codec.contents b

let decode_data (payload : string) =
  let src = Codec.source_of_string payload in
  let n = Codec.get_uvarint src in
  List.init n (fun _ -> Nf2_model.Atom.decode src)

let put_entry b = function
  | D m ->
      Codec.put_u8 b 0;
      Mini_tid.encode b m
  | C m ->
      Codec.put_u8 b 1;
      Mini_tid.encode b m

let get_entry src =
  match Codec.get_u8 src with
  | 0 -> D (Mini_tid.decode src)
  | 1 -> C (Mini_tid.decode src)
  | n -> Codec.decode_error "Subtuple.get_entry: tag %d" n

let put_sections b (sections : sections) =
  Codec.put_uvarint b (List.length sections);
  List.iter
    (fun entries ->
      Codec.put_uvarint b (List.length entries);
      List.iter (put_entry b) entries)
    sections

let get_sections src : sections =
  let n = Codec.get_uvarint src in
  List.init n (fun _ ->
      let k = Codec.get_uvarint src in
      List.init k (fun _ -> get_entry src))

let encode_md (sections : sections) =
  let b = Codec.create_sink () in
  put_sections b sections;
  Codec.contents b

let decode_md (payload : string) =
  let src = Codec.source_of_string payload in
  get_sections src

(* Root MD subtuple: page list + sections. *)
let encode_root (plist : Page_list.t) (sections : sections) =
  let b = Codec.create_sink () in
  Page_list.encode b plist;
  put_sections b sections;
  Codec.contents b

let decode_root (payload : string) =
  let src = Codec.source_of_string payload in
  let plist = Page_list.decode src in
  let sections = get_sections src in
  (plist, sections)
