(** LRU buffer pool over the simulated disk.

    Frames are pinned for the duration of a {!read}/{!write} callback;
    eviction picks the least-recently-used unpinned frame, flushing it
    if dirty.  [hits + misses] is the logical page-access count;
    physical I/O is counted by {!Disk}. *)

type stats = { mutable hits : int; mutable misses : int; mutable evictions : int }

type t

exception Pool_exhausted
(** Raised when every frame is pinned and a new page is requested. *)

(** [create ?frames disk] — default 64 frames. *)
val create : ?frames:int -> Disk.t -> t

val disk : t -> Disk.t
val stats : t -> stats
val reset_stats : t -> unit
val logical_accesses : t -> int

(** Write all dirty frames back to disk. *)
val flush_all : t -> unit

(** [read t page f] pins the page's frame, applies [f] to its bytes,
    and unpins.  The bytes must not escape [f]. *)
val read : t -> int -> (Bytes.t -> 'a) -> 'a

(** Like {!read} but marks the frame dirty. *)
val write : t -> int -> (Bytes.t -> 'a) -> 'a

(** Allocate a fresh disk page (not yet resident). *)
val alloc : t -> int
