(** Deterministic fault injection over the simulated disk and log.

    Arms a fault plan onto a live {!Disk.t} (and optionally the
    {!Wal.t} sharing its fate) by installing hooks that count physical
    operations and fire at an exact, reproducible point, raising
    {!Disk.Crash} — the simulated machine death.  The page array and
    the WAL's durable prefix as written so far are what {!Recovery}
    gets to work with. *)

type plan =
  | Crash_at_write of int
      (** The k-th physical page write dies before any byte lands. *)
  | Torn_write of int
      (** The k-th page write lands only its first half, then dies. *)
  | Crash_after_write of int
      (** The k-th page write lands fully, then the machine dies. *)
  | Crash_at_sync of int
      (** The k-th log fsync persists nothing, then dies. *)
  | Torn_sync of int
      (** The k-th log fsync persists half the pending tail, then dies
          (a torn log tail — dropped by the record framing). *)

val plan_to_string : plan -> string

type t

(** Install the plan's hooks.  Counters start at zero; the k-th
    operation after arming fires. *)
val arm : ?wal:Wal.t -> Disk.t -> plan -> t

(** Remove the hooks (survivors are then safe to keep using). *)
val disarm : t -> unit

val writes : t -> int
(** Physical page writes seen since arming. *)

val syncs : t -> int
(** Log fsyncs seen since arming. *)

val fired : t -> bool
(** Whether the plan's crash point was reached. *)

(** A reproducible random plan driven by a seeded {!Prng.t}: mostly
    write-point crashes, with torn writes and sync failures mixed in.
    The crash write index is uniform in [1, max_writes]. *)
val random_plan : Prng.t -> max_writes:int -> plan
