(** Mini-TIDs: local addresses valid inside one complex object.  The
    [lpage] component indexes the object's page list (its local address
    space), so Mini-TIDs are smaller than TIDs and survive object
    relocation unchanged (Section 4.1 of the paper). *)

type t = { lpage : int; slot : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val encode : Codec.sink -> t -> unit
val decode : Codec.source -> t
val encoded_size : t -> int
