lib/storage/buffer_pool.mli: Bytes Disk Wal
