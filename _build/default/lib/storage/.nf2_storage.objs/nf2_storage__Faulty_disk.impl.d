lib/storage/faulty_disk.ml: Disk Printf Prng Wal
