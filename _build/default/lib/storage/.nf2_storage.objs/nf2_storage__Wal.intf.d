lib/storage/wal.mli:
