lib/storage/page.ml: Bytes Codec List String
