lib/storage/faulty_disk.mli: Disk Prng Wal
