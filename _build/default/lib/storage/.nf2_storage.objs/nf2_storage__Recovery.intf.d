lib/storage/recovery.mli: Bytes Disk Wal
