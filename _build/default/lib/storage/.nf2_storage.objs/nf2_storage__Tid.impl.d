lib/storage/tid.ml: Codec Format Int Printf String
