lib/storage/mini_directory.ml: Buffer List Printf String
