lib/storage/page_list.ml: Array Codec List
