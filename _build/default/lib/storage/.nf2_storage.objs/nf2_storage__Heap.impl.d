lib/storage/heap.ml: Buffer_pool Disk Hashtbl List Option Page Printf Record String Tid
