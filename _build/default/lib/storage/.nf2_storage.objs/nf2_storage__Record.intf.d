lib/storage/record.mli: Tid
