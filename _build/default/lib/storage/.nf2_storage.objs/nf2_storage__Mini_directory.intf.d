lib/storage/mini_directory.mli:
