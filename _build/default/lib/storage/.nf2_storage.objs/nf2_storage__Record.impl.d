lib/storage/record.ml: Codec String Tid
