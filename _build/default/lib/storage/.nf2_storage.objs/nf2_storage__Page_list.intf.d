lib/storage/page_list.mli: Codec
