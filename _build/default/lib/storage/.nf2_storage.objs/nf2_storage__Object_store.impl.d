lib/storage/object_store.ml: Buffer_pool Bytes Codec Disk Fmt Hashtbl Heap List Mini_directory Mini_tid Nf2_model Page Page_list Printf Record String Subtuple Tid
