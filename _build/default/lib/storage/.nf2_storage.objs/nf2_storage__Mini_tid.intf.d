lib/storage/mini_tid.mli: Codec Format
