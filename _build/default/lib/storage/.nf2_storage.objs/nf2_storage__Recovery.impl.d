lib/storage/recovery.ml: Array Bytes Disk Hashtbl List String Wal
