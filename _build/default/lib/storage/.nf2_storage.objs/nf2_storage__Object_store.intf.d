lib/storage/object_store.mli: Buffer_pool Mini_directory Mini_tid Nf2_model Tid
