lib/storage/mini_tid.ml: Codec Format Int Printf String
