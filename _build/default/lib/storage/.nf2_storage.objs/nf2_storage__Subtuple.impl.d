lib/storage/subtuple.ml: Codec List Mini_tid Nf2_model Page_list
