lib/storage/tid.mli: Codec Format
