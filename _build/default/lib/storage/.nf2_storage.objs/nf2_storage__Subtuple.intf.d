lib/storage/subtuple.mli: Codec Mini_tid Nf2_model Page_list
