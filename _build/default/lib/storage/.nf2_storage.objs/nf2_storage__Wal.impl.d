lib/storage/wal.ml: Buffer Char Codec Disk List String
