lib/storage/buffer_pool.ml: Array Bytes Disk Fun Hashtbl Printf Wal
