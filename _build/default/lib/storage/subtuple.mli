(** Subtuple codecs.

    Data subtuples carry the first-level atomic attribute values of a
    (sub)object and no structural information (Section 4.1).  MD
    subtuples carry only structure: a list of {e sections}, each a list
    of D (data) or C (child MD) pointers; the three storage structures
    SS1/SS2/SS3 differ only in which logical nodes get their own MD
    subtuple and how sections are used (see the implementation notes in
    [subtuple.ml]).  The root MD subtuple additionally stores the page
    list. *)

type entry = D of Mini_tid.t | C of Mini_tid.t

type sections = entry list list

val encode_data : Nf2_model.Atom.t list -> string
val decode_data : string -> Nf2_model.Atom.t list

val encode_md : sections -> string
val decode_md : string -> sections

val put_sections : Codec.sink -> sections -> unit
val get_sections : Codec.source -> sections

(** Root MD subtuple: page list + sections. *)
val encode_root : Page_list.t -> sections -> string

val decode_root : string -> Page_list.t * sections
