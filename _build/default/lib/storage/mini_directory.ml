(* Storage-structure alternatives for Mini Directories (Fig 6 of the
   paper) and their analytic properties.

   The actual construction lives in [Object_store]; this module holds
   the layout type, the closed-form MD-subtuple counts the paper argues
   about, and a printable logical view of an object's MD tree. *)

type layout = SS1 | SS2 | SS3

let layout_name = function SS1 -> "SS1" | SS2 -> "SS2" | SS3 -> "SS3"

let all_layouts = [ SS1; SS2; SS3 ]

(* Number of MD subtuples of one complex object, from its structural
   counts (see Value.structure_counts):
     SS1 = 1 + #subtables + #complex-subobjects
     SS2 = 1 + #complex-subobjects
     SS3 = 1 + #subtables
   The paper's claim SS1 >= SS3 >= SS2 (strict on any non-trivial
   object) follows because every complex subobject contains at least
   one subtable. *)
let md_subtuple_count layout ~subtables ~complex_subobjects =
  match layout with
  | SS1 -> 1 + subtables + complex_subobjects
  | SS2 -> 1 + complex_subobjects
  | SS3 -> 1 + subtables

(* Logical, printable view of an MD tree (Fig 6a/6b/6c). *)
type view =
  | Md of { label : string; entries : view_entry list list }

and view_entry = Vd of string (* rendered data subtuple *) | Vc of view

let rec render_view ?(indent = 0) (Md { label; entries }) =
  let pad = String.make indent ' ' in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%s[MD] %s\n" pad label);
  List.iteri
    (fun si section ->
      Buffer.add_string buf (Printf.sprintf "%s  section %d:\n" pad si);
      List.iter
        (function
          | Vd data -> Buffer.add_string buf (Printf.sprintf "%s    D -> (%s)\n" pad data)
          | Vc child ->
              Buffer.add_string buf (Printf.sprintf "%s    C ->\n" pad);
              Buffer.add_string buf (render_view ~indent:(indent + 6) child))
        section)
    entries;
  Buffer.contents buf

let rec count_view_md (Md { entries; _ }) =
  1
  + List.fold_left
      (fun acc section ->
        List.fold_left
          (fun acc -> function Vd _ -> acc | Vc child -> acc + count_view_md child)
          acc section)
      0 entries
