(** Simulated disk: a growable array of fixed-size pages with physical
    I/O accounting.

    The 1986 prototype ran against real DASD; the cost model that
    matters for the paper's comparative claims is the number of page
    reads and writes, which this module counts.  All page-content
    access must go through {!Buffer_pool}.

    The disk is also the physical fault surface for crash-recovery
    testing: {!Faulty_disk} installs a write hook that can tear a page
    write mid-flight and raise {!Crash}, the simulated machine death. *)

exception Crash of string
(** Simulated process/machine death, raised by an armed fault plan.
    Everything in memory (buffer pool, catalog, unflushed WAL tail) is
    lost; the page array as written so far survives. *)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type t

(** [create ?page_size ()] — default page size 4096 bytes (min 64). *)
val create : ?page_size:int -> unit -> t

val page_size : t -> int
val npages : t -> int

(** Live counters (mutable record — copy fields before further I/O). *)
val stats : t -> stats

val reset_stats : t -> unit

(** Allocate a zeroed page; returns its page number.  Allocation is a
    durable metadata operation in this model (only page writes fail). *)
val alloc : t -> int

(** Physical read of a page image into [dst]. *)
val read_into : t -> int -> Bytes.t -> unit

(** Physical write of [src] onto a page.  [lsn], when positive, stamps
    the page with the log record covering this image (see {!page_lsn}).
    May raise {!Crash} when a fault plan is armed. *)
val write_from : ?lsn:int -> t -> int -> Bytes.t -> unit

(** LSN stamped on the last durable write of the page (0 = never
    stamped).  Diagnostic view of the WAL-before-data invariant. *)
val page_lsn : t -> int -> int

(** Fault injection (see {!Faulty_disk}): called on every physical
    write with (page, image).  [None] proceeds; [Some n] applies only
    the first [n] bytes and raises {!Crash}. *)
val set_write_hook : t -> (int -> Bytes.t -> int option) option -> unit

(** Total allocated bytes ([npages * page_size]); used for space
    experiments. *)
val total_bytes : t -> int

(** {1 Persistence} *)

(** Copies of all physical page images, in page order. *)
val export_pages : t -> Bytes.t array

(** Reconstruct a disk from page images. *)
val of_pages : page_size:int -> Bytes.t array -> t
