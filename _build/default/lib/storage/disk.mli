(** Simulated disk: a growable array of fixed-size pages with physical
    I/O accounting.

    The 1986 prototype ran against real DASD; the cost model that
    matters for the paper's comparative claims is the number of page
    reads and writes, which this module counts.  All page-content
    access must go through {!Buffer_pool}. *)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type t

(** [create ?page_size ()] — default page size 4096 bytes (min 64). *)
val create : ?page_size:int -> unit -> t

val page_size : t -> int
val npages : t -> int

(** Live counters (mutable record — copy fields before further I/O). *)
val stats : t -> stats

val reset_stats : t -> unit

(** Allocate a zeroed page; returns its page number. *)
val alloc : t -> int

(** Physical read of a page image into [dst]. *)
val read_into : t -> int -> Bytes.t -> unit

(** Physical write of [src] onto a page. *)
val write_from : t -> int -> Bytes.t -> unit

(** Total allocated bytes ([npages * page_size]); used for space
    experiments. *)
val total_bytes : t -> int

(** {1 Persistence} *)

(** Copies of all physical page images, in page order. *)
val export_pages : t -> Bytes.t array

(** Reconstruct a disk from page images. *)
val of_pages : page_size:int -> Bytes.t array -> t
