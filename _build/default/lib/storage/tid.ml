(* Tuple identifiers.

   A TID addresses a subtuple globally: database page number plus slot
   number, exactly as in System R.  A Mini-TID addresses a subtuple
   *inside one complex object*: its page component is a position in the
   object's page list (its "local address space"), not a database page
   number, and is therefore both smaller and stable under object
   relocation (Section 4.1 of the paper). *)

type t = { page : int; slot : int }

let compare a b =
  match Int.compare a.page b.page with 0 -> Int.compare a.slot b.slot | c -> c

let equal a b = compare a b = 0
let to_string t = Printf.sprintf "%d.%d" t.page t.slot
let pp fmt t = Format.pp_print_string fmt (to_string t)

let encode b t =
  Codec.put_uvarint b t.page;
  Codec.put_uvarint b t.slot

let decode src =
  let page = Codec.get_uvarint src in
  let slot = Codec.get_uvarint src in
  { page; slot }

(* Encoded size in bytes — used for the TID vs Mini-TID space bench. *)
let encoded_size t =
  let b = Codec.create_sink () in
  encode b t;
  String.length (Codec.contents b)
