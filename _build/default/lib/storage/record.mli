(** Record envelope shared by the heap files and the complex-object
    store.

    - [Plain]: an ordinary record.
    - [Forward]: pointer to the record's current location, left behind
      when an update outgrows its page so TIDs/Mini-TIDs stay valid.
    - [Spilled]: the moved payload itself, reachable only via its
      forward pointer and skipped by scans.
    - [Chunk]: one piece of a record larger than a page; pieces chain
      through global TIDs.  Needed because subtable MD subtuples may
      hold thousands of pointers (Section 4.1).

    Encoded records are padded to {!min_size} bytes so any slot can
    later be overwritten in place by a forward pointer, even on a full
    page. *)

type t =
  | Plain of string
  | Forward of Tid.t
  | Spilled of string
  | Chunk of { part : string; next : Tid.t option; scan_root : bool }
      (** [scan_root] is true for the first chunk of a non-spilled
          logical record (so scans surface it exactly once). *)

val min_size : int

val encode : t -> string
val decode : string -> t

(** Per-chunk envelope overhead bound: payload space available in a
    chunk of byte budget [n] is at least [n - chunk_overhead]. *)
val chunk_overhead : int
