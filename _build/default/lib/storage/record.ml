type t =
  | Plain of string
  | Forward of Tid.t
  | Spilled of string
  | Chunk of { part : string; next : Tid.t option; scan_root : bool }

(* Large enough for tag + length + a varint TID of any database below
   ~2^21 pages; asserted in [encode]. *)
let min_size = 16

(* tag(1) + scan_root(1) + has_next(1) + tid(<=12) + len varint(<=5) *)
let chunk_overhead = 20

let encode t =
  let b = Codec.create_sink () in
  (match t with
  | Plain payload ->
      Codec.put_u8 b 0;
      Codec.put_string b payload
  | Forward tid ->
      Codec.put_u8 b 1;
      Tid.encode b tid
  | Spilled payload ->
      Codec.put_u8 b 2;
      Codec.put_string b payload
  | Chunk { part; next; scan_root } ->
      Codec.put_u8 b 3;
      Codec.put_bool b scan_root;
      (match next with
      | None -> Codec.put_u8 b 0
      | Some tid ->
          Codec.put_u8 b 1;
          Tid.encode b tid);
      Codec.put_string b part);
  let body = Codec.contents b in
  (match t with
  | Forward _ ->
      if String.length body > min_size then
        failwith "Record.encode: forward pointer exceeds min_size (database too large)"
  | Plain _ | Spilled _ | Chunk _ -> ());
  if String.length body >= min_size then body
  else body ^ String.make (min_size - String.length body) '\000'

let decode s =
  if String.length s = 0 then Codec.decode_error "Record.decode: empty";
  let src = Codec.source_of_string s in
  match Codec.get_u8 src with
  | 0 -> Plain (Codec.get_string src)
  | 1 -> Forward (Tid.decode src)
  | 2 -> Spilled (Codec.get_string src)
  | 3 ->
      let scan_root = Codec.get_bool src in
      let next = match Codec.get_u8 src with 0 -> None | _ -> Some (Tid.decode src) in
      Chunk { part = Codec.get_string src; next; scan_root }
  | n -> Codec.decode_error "Record.decode: tag %d" n
