(* LRU buffer pool over the simulated disk.

   Frames are pinned for the duration of a [read]/[write] callback and
   unpinned afterwards; eviction picks the least recently used unpinned
   frame and flushes it if dirty.  Counters distinguish logical page
   accesses (hits + misses) from physical I/O (kept on the disk). *)

type frame = {
  mutable page : int; (* -1 when frame is empty *)
  buf : Bytes.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable lru : int; (* last-use tick *)
}

type stats = { mutable hits : int; mutable misses : int; mutable evictions : int }

type t = {
  disk : Disk.t;
  frames : frame array;
  table : (int, int) Hashtbl.t; (* page -> frame index *)
  mutable tick : int;
  stats : stats;
}

exception Pool_exhausted

let create ?(frames = 64) disk =
  if frames < 1 then invalid_arg "Buffer_pool.create: frames < 1";
  {
    disk;
    frames =
      Array.init frames (fun _ ->
          { page = -1; buf = Bytes.make (Disk.page_size disk) '\000'; dirty = false; pins = 0; lru = 0 });
    table = Hashtbl.create (2 * frames);
    tick = 0;
    stats = { hits = 0; misses = 0; evictions = 0 };
  }

let stats t = t.stats
let disk t = t.disk

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.evictions <- 0

let logical_accesses t = t.stats.hits + t.stats.misses

let flush_frame t f =
  if f.dirty && f.page >= 0 then begin
    Disk.write_from t.disk f.page f.buf;
    f.dirty <- false
  end

let flush_all t = Array.iter (flush_frame t) t.frames

(* Pick a victim frame: empty frame if any, else LRU unpinned. *)
let victim t =
  let best = ref (-1) in
  Array.iteri
    (fun i f ->
      if f.pins = 0 then
        if f.page = -1 then (if !best = -1 || t.frames.(!best).page <> -1 then best := i)
        else if !best = -1 || (t.frames.(!best).page <> -1 && f.lru < t.frames.(!best).lru) then
          best := i)
    t.frames;
  if !best = -1 then raise Pool_exhausted;
  !best

let load t page =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table page with
  | Some i ->
      t.stats.hits <- t.stats.hits + 1;
      let f = t.frames.(i) in
      f.lru <- t.tick;
      (i, f)
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      let i = victim t in
      let f = t.frames.(i) in
      if f.page >= 0 then begin
        t.stats.evictions <- t.stats.evictions + 1;
        flush_frame t f;
        Hashtbl.remove t.table f.page
      end;
      Disk.read_into t.disk page f.buf;
      f.page <- page;
      f.dirty <- false;
      f.lru <- t.tick;
      Hashtbl.replace t.table page i;
      (i, f)

let with_page t page ~dirty fn =
  let _, f = load t page in
  f.pins <- f.pins + 1;
  Fun.protect
    ~finally:(fun () ->
      f.pins <- f.pins - 1;
      if dirty then f.dirty <- true)
    (fun () ->
      let r = fn f.buf in
      if dirty then f.dirty <- true;
      r)

let read t page fn = with_page t page ~dirty:false fn
let write t page fn = with_page t page ~dirty:true fn

(* Allocate a fresh disk page and expose it dirty in the pool. *)
let alloc t =
  let page = Disk.alloc t.disk in
  page
