(* Binary encoding helpers used by the subtuple codecs and the index
   key encoders.  All encodings are deterministic; integers use a
   zig-zag varint so short values stay short (Mini Directories are
   meant to be compact). *)

type sink = Buffer.t

let create_sink () = Buffer.create 64
let contents (b : sink) = Buffer.contents b

type source = { data : string; mutable pos : int }

let source_of_string data = { data; pos = 0 }
let remaining src = String.length src.data - src.pos
let at_end src = remaining src = 0

exception Decode_error of string

let decode_error fmt = Fmt.kstr (fun s -> raise (Decode_error s)) fmt

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let get_u8 src =
  if src.pos >= String.length src.data then decode_error "get_u8: end of input";
  let c = Char.code src.data.[src.pos] in
  src.pos <- src.pos + 1;
  c

(* Unsigned LEB128 varint over the full 63-bit pattern (a negative int
   is encoded as its unsigned bit pattern; 9 bytes max). *)
let put_uvarint b v =
  let rec go v =
    if v >= 0 && v < 0x80 then put_u8 b v
    else begin
      put_u8 b ((v land 0x7f) lor 0x80);
      go (v lsr 7)
    end
  in
  go v

let get_uvarint src =
  let rec go shift acc =
    if shift > 62 then decode_error "get_uvarint: overflow";
    let byte = get_u8 src in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* Zig-zag for signed ints. *)
let put_varint b v =
  let z = (v lsl 1) lxor (v asr 62) in
  put_uvarint b z

let get_varint src =
  let z = get_uvarint src in
  (z lsr 1) lxor (-(z land 1))

let put_string b s =
  put_uvarint b (String.length s);
  Buffer.add_string b s

let get_string src =
  let n = get_uvarint src in
  if remaining src < n then decode_error "get_string: truncated";
  let s = String.sub src.data src.pos n in
  src.pos <- src.pos + n;
  s

(* Fixed-length raw bytes (no length prefix). *)
let get_fixed src n =
  if remaining src < n then decode_error "get_fixed: truncated";
  let s = String.sub src.data src.pos n in
  src.pos <- src.pos + n;
  s

let put_bool b v = put_u8 b (if v then 1 else 0)

let get_bool src =
  match get_u8 src with
  | 0 -> false
  | 1 -> true
  | n -> decode_error "get_bool: invalid byte %d" n

let put_float b v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xff)
  done

let get_float src =
  let bits = ref 0L in
  for i = 0 to 7 do
    let byte = Int64.of_int (get_u8 src) in
    bits := Int64.logor !bits (Int64.shift_left byte (i * 8))
  done;
  Int64.float_of_bits !bits

(* Fixed-width big-endian u16/u32, used inside slotted pages where the
   layout must be position-stable. *)
let blit_u16 bytes off v =
  Bytes.set_uint8 bytes off ((v lsr 8) land 0xff);
  Bytes.set_uint8 bytes (off + 1) (v land 0xff)

let read_u16 bytes off = (Bytes.get_uint8 bytes off lsl 8) lor Bytes.get_uint8 bytes (off + 1)

let blit_u32 bytes off v =
  Bytes.set_uint8 bytes off ((v lsr 24) land 0xff);
  Bytes.set_uint8 bytes (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 bytes (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 bytes (off + 3) (v land 0xff)

let read_u32 bytes off =
  (Bytes.get_uint8 bytes off lsl 24)
  lor (Bytes.get_uint8 bytes (off + 1) lsl 16)
  lor (Bytes.get_uint8 bytes (off + 2) lsl 8)
  lor Bytes.get_uint8 bytes (off + 3)

(* Order-preserving key encoding: encoded keys compare bytewise in the
   same order as the source values.  Used by the B+-tree. *)
let key_of_int v =
  let b = Bytes.create 8 in
  (* flip sign bit so that negative < positive bytewise *)
  let u = Int64.logxor (Int64.of_int v) Int64.min_int in
  for i = 0 to 7 do
    Bytes.set_uint8 b i (Int64.to_int (Int64.shift_right_logical u ((7 - i) * 8)) land 0xff)
  done;
  Bytes.to_string b

let key_of_string s = s

let key_of_float v =
  let bits = Int64.bits_of_float v in
  (* standard order-preserving float transform *)
  let u =
    if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int else Int64.lognot bits
  in
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set_uint8 b i (Int64.to_int (Int64.shift_right_logical u ((7 - i) * 8)) land 0xff)
  done;
  Bytes.to_string b
