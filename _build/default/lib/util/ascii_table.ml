(* Fixed-width ASCII rendering of flat row data, used by the shell and
   the bench harness to print paper-style tables. *)

let render ~header rows =
  let ncols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Ascii_table.render: ragged rows")
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          (* cells may be multi-line (nested tables rendered inline) *)
          String.split_on_char '\n' cell
          |> List.iter (fun line -> if String.length line > widths.(i) then widths.(i) <- String.length line))
        row)
    rows;
  let buf = Buffer.create 256 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row cells =
    (* split all cells into lines and pad to tallest *)
    let lines = List.map (String.split_on_char '\n') cells in
    let height = List.fold_left (fun acc ls -> max acc (List.length ls)) 1 lines in
    for ln = 0 to height - 1 do
      Buffer.add_char buf '|';
      List.iteri
        (fun i ls ->
          let cell = try List.nth ls ln with _ -> "" in
          Buffer.add_char buf ' ';
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ');
          Buffer.add_string buf " |")
        lines;
      Buffer.add_char buf '\n'
    done
  in
  sep ();
  emit_row header;
  sep ();
  List.iter emit_row rows;
  sep ();
  Buffer.contents buf
