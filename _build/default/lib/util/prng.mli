(** SplitMix64 — deterministic PRNG for workload generation, so benches
    and fixtures reproduce across runs and OCaml versions. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform in [0, bound).  @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val in_range : t -> int -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool
val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a

(** Fisher-Yates shuffle of a copy. *)
val shuffle : t -> 'a array -> 'a array

(** A lowercase pseudo-word of the given length. *)
val word : t -> int -> string
