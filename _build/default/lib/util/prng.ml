(* SplitMix64 — deterministic PRNG for workload generation.  We do not
   use [Random] so that benches and property fixtures are reproducible
   across runs and OCaml versions. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Prng.in_range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty";
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick_list: empty"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  let arr = Array.copy arr in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  arr

(* A lowercase pseudo-word of the given length. *)
let word t len = String.init len (fun _ -> Char.chr (Char.code 'a' + int t 26))
