(** Binary encoding helpers used by the subtuple codecs and the index
    key encoders.  All encodings are deterministic. *)

type sink = Buffer.t

val create_sink : unit -> sink
val contents : sink -> string

type source

val source_of_string : string -> source
val remaining : source -> int
val at_end : source -> bool

exception Decode_error of string

val decode_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val put_u8 : sink -> int -> unit
val get_u8 : source -> int

(** Unsigned LEB128 varint over the full 63-bit pattern. *)
val put_uvarint : sink -> int -> unit

val get_uvarint : source -> int

(** Zig-zag signed varint: small magnitudes stay short. *)
val put_varint : sink -> int -> unit

val get_varint : source -> int

(** Length-prefixed string. *)
val put_string : sink -> string -> unit

val get_string : source -> string

(** Fixed-length raw bytes (no length prefix). *)
val get_fixed : source -> int -> string

val put_bool : sink -> bool -> unit
val get_bool : source -> bool
val put_float : sink -> float -> unit
val get_float : source -> float

(** {1 Fixed-width big-endian fields} (position-stable page layouts) *)

val blit_u16 : Bytes.t -> int -> int -> unit
val read_u16 : Bytes.t -> int -> int
val blit_u32 : Bytes.t -> int -> int -> unit
val read_u32 : Bytes.t -> int -> int

(** {1 Order-preserving key encodings}

    Encoded keys compare bytewise in the same order as their source
    values (within one type). *)

val key_of_int : int -> string
val key_of_string : string -> string
val key_of_float : float -> string
