(** Masked text-search patterns: ['*'] matches any (possibly empty)
    substring, ['?'] exactly one character; matching is
    case-insensitive — the semantics of the paper's
    [CONTAINS '*comput*'] example. *)

type t

type segment = Star | Any_one | Lit of string

val compile : string -> t
val to_string : t -> string

(** Literal runs of the pattern (used by the text index to find
    candidate words). *)
val literals : t -> string list

(** The pattern's literal prefix/suffix when anchored there. *)
val anchored_prefix : t -> string option

val anchored_suffix : t -> string option

(** Whole-string match. *)
val matches : t -> string -> bool

(** Does any whitespace-delimited word of the text match? *)
val matches_word : t -> string -> bool
