(* Masked text search patterns: '*' matches any (possibly empty)
   substring, '?' matches exactly one character.  Matching is
   case-insensitive, as in the paper's `CONTAINS '*comput*'` example
   which is meant to hit "computational", "minicomputer", ... *)

type t = { raw : string; segments : segment list }

and segment = Star | Any_one | Lit of string

let compile raw =
  let n = String.length raw in
  let segments = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      segments := Lit (String.lowercase_ascii (Buffer.contents buf)) :: !segments;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    match raw.[i] with
    | '*' ->
        flush ();
        (* collapse consecutive stars *)
        (match !segments with Star :: _ -> () | _ -> segments := Star :: !segments)
    | '?' ->
        flush ();
        segments := Any_one :: !segments
    | c -> Buffer.add_char buf c
  done;
  flush ();
  { raw; segments = List.rev !segments }

let to_string t = t.raw

(* Literal fragments of the pattern (used by the text index to find
   candidate words). *)
let literals t = List.filter_map (function Lit s -> Some s | Star | Any_one -> None) t.segments

(* True when the pattern contains no wildcard at its start/end —
   i.e. it is anchored there. *)
let anchored_prefix t = match t.segments with Lit s :: _ -> Some s | _ -> None

let anchored_suffix t =
  match List.rev t.segments with Lit s :: _ -> Some s | _ -> None

let matches t text =
  let text = String.lowercase_ascii text in
  let n = String.length text in
  (* classic backtracking over segments *)
  let rec go segs pos =
    match segs with
    | [] -> pos = n
    | Star :: rest ->
        let rec try_from p = p <= n && (go rest p || try_from (p + 1)) in
        try_from pos
    | Any_one :: rest -> pos < n && go rest (pos + 1)
    | Lit s :: rest ->
        let ls = String.length s in
        pos + ls <= n && String.sub text pos ls = s && go rest (pos + ls)
  in
  go t.segments 0

(* Does the pattern match any whitespace-delimited word of [text]?
   This is the CONTAINS semantics: `*comput*` finds a matching word. *)
let matches_word t text =
  String.split_on_char ' ' text
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.exists (fun w -> w <> "" && matches t w)
