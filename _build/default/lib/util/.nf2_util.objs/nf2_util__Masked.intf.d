lib/util/masked.mli:
