lib/util/masked.ml: Buffer List String
