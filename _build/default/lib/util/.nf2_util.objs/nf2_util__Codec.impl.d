lib/util/codec.ml: Buffer Bytes Char Fmt Int64 String
