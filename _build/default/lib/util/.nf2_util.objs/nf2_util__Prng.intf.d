lib/util/prng.mli:
