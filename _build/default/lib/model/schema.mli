(** Schemas of the extended NF² data model.

    A table is either unordered (a relation, written [{ }] in the
    paper) or ordered (a list, written [< >]).  Attributes are atomic
    or again tables, nested to arbitrary depth; a 1NF table is the
    special case with only atomic attributes. *)

type kind = Set  (** unordered: a relation *) | List  (** ordered: a list *)

type attr = Atomic of Atom.ty | Table of table

and field = { name : string; attr : attr }

and table = { kind : kind; fields : field list }

(** A named top-level table schema. *)
type t = { name : string; table : table }

exception Schema_error of string

val schema_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** True iff the table has only atomic attributes (is in 1NF). *)
val flat : table -> bool

val field_names : table -> string list

(** Case-insensitive field lookup; returns position and field. *)
val find_field : table -> string -> (int * field) option

(** Like {!find_field}.  @raise Schema_error when absent. *)
val field_exn : table -> string -> int * field

(** Check well-formedness (non-empty tables, unique attribute names,
    recursively) and return the schema.  @raise Schema_error. *)
val validate : t -> t

(** Number of table-valued attributes, at all nesting levels. *)
val count_table_attrs : table -> int

(** Maximum nesting depth (0 for a flat table). *)
val depth : table -> int

(** {1 Attribute paths} *)

(** A path through nested tables down to an attribute, e.g.
    [["PROJECTS"; "MEMBERS"; "FUNCTION"]]. *)
type path = string list

(** Resolve a path to the attribute it denotes.
    @raise Schema_error if a step is unknown or descends an atom. *)
val resolve_path : table -> path -> attr

val path_to_string : path -> string

(** {1 Rendering} *)

val pp_attr : Format.formatter -> attr -> unit
val pp_table : Format.formatter -> table -> unit

(** One-line structure, e.g.
    [DEPARTMENTS { DNO: INT, PROJECTS: { ... }, ... }]. *)
val to_string : t -> string

(** IMS-style segment-tree rendering (the paper's Fig 1): one line per
    nesting level, fields = first-level atomic attributes. *)
val render_segment_tree : t -> string

(** {1 Binary codec} (used by catalogs) *)

val encode_table : Codec.sink -> table -> unit
val decode_table : Codec.source -> table
val encode : Codec.sink -> t -> unit
val decode : Codec.source -> t

(** {1 Construction helpers} *)

val atom : string -> Atom.ty -> field
val int_ : string -> field
val str_ : string -> field
val float_ : string -> field
val bool_ : string -> field
val date_ : string -> field

(** Relation-valued attribute. *)
val set_ : string -> field list -> field

(** List-valued attribute. *)
val list_ : string -> field list -> field

(** Validated top-level relation / ordered table. *)
val relation : string -> field list -> t

val ordered : string -> field list -> t
