(** Values of the extended NF² data model.

    A tuple is a list of attribute values positionally matching its
    schema; table values carry their kind so set- and list-valued
    results stay distinguishable without a schema at hand.  All
    set-level comparisons are insertion-order-insensitive. *)

type v = Atom of Atom.t | Table of table

and table = { kind : Schema.kind; tuples : tuple list }

and tuple = v list

exception Value_error of string

val value_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Construction helpers} *)

val empty_set : v
val set : tuple list -> v
val list_ : tuple list -> v
val int_ : int -> v
val str : string -> v
val float_ : float -> v
val bool_ : bool -> v
val null : v

(** @raise Value_error when the value is of the other shape. *)
val as_atom : v -> Atom.t

val as_table : v -> table

(** {1 Comparison}

    Total order on values; [Set]-kind tables compare as canonically
    sorted, deduplicated tuple lists, so two sets differing only in
    order are equal.  [List]-kind tables compare positionally. *)

val compare_v : v -> v -> int
val compare_table : table -> table -> int
val compare_tuple : tuple -> tuple -> int
val equal_v : v -> v -> bool
val equal_tuple : tuple -> tuple -> bool
val equal_table : table -> table -> bool

(** Canonical (sorted, deduplicated) tuples of a table; [List]-kind
    tables are returned as-is. *)
val canonical_tuples : table -> tuple list

(** Sort + dedup under set semantics. *)
val dedup : tuple list -> tuple list

(** {1 Schema conformance} *)

val conforms_attr : Schema.attr -> v -> bool
val conforms_tuple : Schema.table -> tuple -> bool

(** @raise Value_error when the tuple does not conform. *)
val check_tuple : Schema.table -> tuple -> unit

(** Conformance of a whole table value to a named schema. *)
val conforms : Schema.t -> table -> bool

(** {1 Access} *)

(** Case-insensitive field projection.  @raise Value_error. *)
val field : Schema.table -> tuple -> string -> v

(** Follow a schema path inside one tuple; descending through a
    table-valued step maps over its tuples (implicit projection). *)
val project_path : Schema.table -> tuple -> Schema.path -> v

(** All atoms reachable under a path ending at an atomic attribute,
    flattened across every nesting level (used for indexing). *)
val atoms_on_path : Schema.table -> tuple -> Schema.path -> Atom.t list

(** [(subtables, complex_subobjects)] inside one object, using the
    terminology of Section 4.1 of the paper: each table-attribute
    instance is a subtable; each tuple of a non-flat subtable is a
    complex subobject. *)
val structure_counts : Schema.table -> tuple -> int * int

(** {1 Rendering} *)

(** Literal form: [{(314, 56194, {...}, 320000, {...})}]. *)
val render_v : v -> string

val render_table : table -> string
val render_tuple : tuple -> string

(** Paper-style nested-box ASCII rendering. *)
val render_boxed : Schema.table -> table -> string

(** Boxed rendering with the [{ NAME }] / [< NAME >] headline. *)
val render_named : Schema.t -> table -> string

(** {1 Binary codec} *)

val encode_v : Codec.sink -> v -> unit
val encode_tuple : Codec.sink -> tuple -> unit
val decode_v : Codec.source -> v
val decode_tuple : Codec.source -> tuple
