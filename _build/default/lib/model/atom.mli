(** Atomic attribute values of the extended NF² data model.

    Atoms are the leaves of every NF² value tree: integers, floats,
    text, booleans, dates (day granularity, stored as days since
    1970-01-01), and NULL. *)

(** Atomic types. *)
type ty = Tint | Tfloat | Tstring | Tbool | Tdate

(** Atomic values.  [Null] conforms to every atomic type. *)
type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 (may be negative) *)
  | Null

(** [type_name ty] is the DDL spelling of [ty] ([INT], [TEXT], ...). *)
val type_name : ty -> string

(** The type of an atom; [None] for [Null]. *)
val ty_of_atom : t -> ty option

(** [conforms ty a] is true iff [a] may be stored in a column of type
    [ty] ([Null] always conforms). *)
val conforms : ty -> t -> bool

(** Total order: [Null] first, then by constructor, then by value.
    Only comparisons within one type are semantically meaningful. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** {1 Calendar arithmetic} *)

val is_leap : int -> bool

(** [days_in_month y m] with [m] in 1..12. *)
val days_in_month : int -> int -> int

(** [days_of_ymd y m d] is the day number of the given date.
    @raise Invalid_argument on out-of-range month/day. *)
val days_of_ymd : int -> int -> int -> int

(** Inverse of {!days_of_ymd}: [(year, month, day)]. *)
val ymd_of_days : int -> int * int * int

val date_of_ymd : int -> int -> int -> t

(** Parse a ['YYYY-MM-DD'] string; [None] if malformed or invalid. *)
val date_of_string : string -> t option

(** {1 Rendering} *)

(** Plain rendering (no quotes): [42], [1984-01-15], [NULL]. *)
val to_string : t -> string

(** SQL-literal rendering: strings quoted with [''] escaping, dates as
    [DATE 'YYYY-MM-DD']. *)
val to_literal : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Binary codec} *)

val encode : Codec.sink -> t -> unit
val decode : Codec.source -> t

(** Order-preserving binary key: for atoms [a], [b] of the same type,
    [String.compare (to_key a) (to_key b)] agrees with {!compare}.
    Used as B+-tree keys. *)
val to_key : t -> string
