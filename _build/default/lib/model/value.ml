(* Values of the extended NF2 data model.

   A tuple is a list of attribute values positionally matching its
   schema; table values carry their kind so that set-valued and
   list-valued results can be distinguished without a schema at hand.
   Sets are stored as lists too, but all set-level comparisons are
   order-insensitive. *)

type v = Atom of Atom.t | Table of table

and table = { kind : Schema.kind; tuples : tuple list }

and tuple = v list

exception Value_error of string

let value_error fmt = Fmt.kstr (fun s -> raise (Value_error s)) fmt

let empty_set = Table { kind = Set; tuples = [] }
let set tuples = Table { kind = Set; tuples }
let list_ tuples = Table { kind = List; tuples }
let int_ v = Atom (Atom.Int v)
let str v = Atom (Atom.Str v)
let float_ v = Atom (Atom.Float v)
let bool_ v = Atom (Atom.Bool v)
let null = Atom Atom.Null

let as_atom = function
  | Atom a -> a
  | Table _ -> value_error "expected atomic value, got table"

let as_table = function
  | Table t -> t
  | Atom a -> value_error "expected table value, got atom %s" (Atom.to_string a)

(* --- comparison ---------------------------------------------------- *)

(* Total order on values.  Set-valued attributes are compared as
   multisets by comparing their canonically sorted tuple lists, so two
   sets differing only in insertion order are equal. *)
let rec compare_v (a : v) (b : v) =
  match a, b with
  | Atom x, Atom y -> Atom.compare x y
  | Atom _, Table _ -> -1
  | Table _, Atom _ -> 1
  | Table x, Table y -> compare_table x y

and compare_table (x : table) (y : table) =
  match Stdlib.compare x.kind y.kind with
  | 0 ->
      let xs = canonical_tuples x and ys = canonical_tuples y in
      compare_tuple_lists xs ys
  | c -> c

and compare_tuple_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' -> (
      match compare_tuple x y with 0 -> compare_tuple_lists xs' ys' | c -> c)

and compare_tuple (x : tuple) (y : tuple) =
  match x, y with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | a :: x', b :: y' -> ( match compare_v a b with 0 -> compare_tuple x' y' | c -> c)

and canonical_tuples (t : table) =
  match t.kind with
  | List -> t.tuples
  | Set -> Stdlib.List.sort_uniq compare_tuple t.tuples

let equal_v a b = compare_v a b = 0
let equal_tuple a b = compare_tuple a b = 0
let equal_table a b = compare_table a b = 0

(* Set-semantic deduplication. *)
let dedup tuples = Stdlib.List.sort_uniq compare_tuple tuples

(* --- schema conformance -------------------------------------------- *)

let rec conforms_attr (attr : Schema.attr) (v : v) =
  match attr, v with
  | Schema.Atomic ty, Atom a -> Atom.conforms ty a
  | Schema.Table sub, Table t -> t.kind = sub.kind && Stdlib.List.for_all (conforms_tuple sub) t.tuples
  | Schema.Atomic _, Table _ | Schema.Table _, Atom _ -> false

and conforms_tuple (tbl : Schema.table) (tup : tuple) =
  Stdlib.List.length tup = Stdlib.List.length tbl.fields
  && Stdlib.List.for_all2 (fun (f : Schema.field) v -> conforms_attr f.attr v) tbl.fields tup

let check_tuple (tbl : Schema.table) (tup : tuple) =
  if not (conforms_tuple tbl tup) then value_error "tuple does not conform to schema"

let conforms (s : Schema.t) (t : table) =
  t.kind = s.table.kind && Stdlib.List.for_all (conforms_tuple s.table) t.tuples

(* --- field access --------------------------------------------------- *)

let field (tbl : Schema.table) (tup : tuple) name =
  match Schema.find_field tbl name with
  | None -> value_error "unknown attribute %s" name
  | Some (i, _) -> (
      match Stdlib.List.nth_opt tup i with
      | Some v -> v
      | None -> value_error "tuple too short for attribute %s" name)

(* Follow a schema path inside one tuple; table steps must be the last
   component unless the value is descended per-tuple by the caller. *)
let rec project_path (tbl : Schema.table) (tup : tuple) (p : Schema.path) : v =
  match p with
  | [] -> value_error "empty path"
  | [ name ] -> field tbl tup name
  | name :: rest -> (
      let _, f = Schema.field_exn tbl name in
      match f.attr, field tbl tup name with
      | Schema.Table sub, Table inner ->
          (* collect over all tuples of the subtable *)
          let vs = Stdlib.List.map (fun t -> project_path sub t rest) inner.tuples in
          Table { kind = inner.kind; tuples = Stdlib.List.map (fun v -> [ v ]) vs }
      | _ -> value_error "path step %s is not a table" name)

(* Atoms reachable under path [p], flattened across all nesting levels.
   Used by index building and CONTAINS evaluation. *)
let rec atoms_on_path (tbl : Schema.table) (tup : tuple) (p : Schema.path) : Atom.t list =
  match p with
  | [] -> []
  | [ name ] -> (
      match field tbl tup name with
      | Atom a -> [ a ]
      | Table _ -> value_error "path ends at a table, expected atom")
  | name :: rest -> (
      let _, f = Schema.field_exn tbl name in
      match f.attr, field tbl tup name with
      | Schema.Table sub, Table inner ->
          Stdlib.List.concat_map (fun t -> atoms_on_path sub t rest) inner.tuples
      | _ -> value_error "path step %s is not a table" name)

(* --- statistics used by the storage experiments --------------------- *)

(* Counts (number of subtables, number of complex subobjects) inside one
   object, per the terminology of Section 4.1 of the paper.  The object
   itself is not counted as a complex subobject; each table-valued
   attribute *instance* is a subtable; each tuple of a non-flat subtable
   is a complex subobject. *)
let structure_counts (tbl : Schema.table) (tup : tuple) =
  let subtables = ref 0 and complex_subobjects = ref 0 in
  let rec go (tbl : Schema.table) (tup : tuple) =
    Stdlib.List.iter2
      (fun (f : Schema.field) v ->
        match f.attr, v with
        | Schema.Atomic _, _ -> ()
        | Schema.Table sub, Table inner ->
            incr subtables;
            let complex = not (Schema.flat sub) in
            Stdlib.List.iter
              (fun t ->
                if complex then incr complex_subobjects;
                go sub t)
              inner.tuples
        | Schema.Table _, Atom _ -> value_error "schema mismatch in structure_counts")
      tbl.fields tup
  in
  go tbl tup;
  (!subtables, !complex_subobjects)

(* --- rendering ------------------------------------------------------ *)

let rec render_v = function
  | Atom a -> Atom.to_literal a
  | Table t -> render_table t

and render_table (t : table) =
  let o, c = match t.kind with Schema.Set -> ("{", "}") | Schema.List -> ("<", ">") in
  o ^ String.concat ", " (Stdlib.List.map render_tuple t.tuples) ^ c

and render_tuple (tup : tuple) = "(" ^ String.concat ", " (Stdlib.List.map render_v tup) ^ ")"

(* Paper-style nested box rendering: every nested table becomes an
   inlined multi-line ASCII table inside its parent cell. *)
let rec render_boxed (tbl : Schema.table) (t : table) : string =
  let header = Schema.field_names tbl in
  let rows =
    Stdlib.List.map
      (fun tup ->
        Stdlib.List.map2
          (fun (f : Schema.field) v ->
            match f.attr, v with
            | Schema.Atomic _, Atom a -> Atom.to_string a
            | Schema.Table sub, Table inner -> render_boxed sub inner
            | _ -> "?")
          tbl.fields tup)
      t.tuples
  in
  (* strip trailing newline so nesting stays tight *)
  let s = Ascii_table.render ~header rows in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then String.sub s 0 (String.length s - 1)
  else s

let render_named (s : Schema.t) (t : table) =
  let mark = match s.table.kind with Schema.Set -> Printf.sprintf "{ %s }" s.name | Schema.List -> Printf.sprintf "< %s >" s.name in
  mark ^ "\n" ^ render_boxed s.table t ^ "\n"

(* --- binary codec: a whole value tree (used by catalog defaults and
   the baseline stores; the NF2 object store encodes per-subtuple
   instead). *)

let rec encode_v b = function
  | Atom a ->
      Codec.put_u8 b 0;
      Atom.encode b a
  | Table t ->
      Codec.put_u8 b 1;
      Codec.put_u8 b (match t.kind with Schema.Set -> 0 | Schema.List -> 1);
      Codec.put_uvarint b (Stdlib.List.length t.tuples);
      Stdlib.List.iter (encode_tuple b) t.tuples

and encode_tuple b (tup : tuple) =
  Codec.put_uvarint b (Stdlib.List.length tup);
  Stdlib.List.iter (encode_v b) tup

let rec decode_v src : v =
  match Codec.get_u8 src with
  | 0 -> Atom (Atom.decode src)
  | 1 ->
      let kind = match Codec.get_u8 src with 0 -> Schema.Set | 1 -> Schema.List | n -> Codec.decode_error "kind %d" n in
      let n = Codec.get_uvarint src in
      Table { kind; tuples = Stdlib.List.init n (fun _ -> decode_tuple src) }
  | n -> Codec.decode_error "Value.decode_v: tag %d" n

and decode_tuple src : tuple =
  let n = Codec.get_uvarint src in
  Stdlib.List.init n (fun _ -> decode_v src)
