(* Schemas of the extended NF2 data model.

   A table is either unordered (a relation, rendered with curly braces
   in the paper) or ordered (a list, rendered with angle brackets).
   Attributes are atomic or again tables, nested to arbitrary depth.
   A 1NF table is the special case where every attribute is atomic. *)

type kind = Set | List

type attr = Atomic of Atom.ty | Table of table

and field = { name : string; attr : attr }

and table = { kind : kind; fields : field list }

type t = { name : string; table : table }

exception Schema_error of string

let schema_error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let flat { fields; _ } =
  List.for_all (fun f -> match f.attr with Atomic _ -> true | Table _ -> false) fields

let field_names (t : table) = List.map (fun (f : field) -> f.name) t.fields

let find_field (table : table) name =
  let rec go i = function
    | [] -> None
    | (f : field) :: _ when String.uppercase_ascii f.name = String.uppercase_ascii name ->
        Some (i, f)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 table.fields

let field_exn table name =
  match find_field table name with
  | Some x -> x
  | None -> schema_error "unknown attribute %s" name

let validate t =
  let rec check_table path (tbl : table) =
    if tbl.fields = [] then schema_error "%s: table with no attributes" path;
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (f : field) ->
        let key = String.uppercase_ascii f.name in
        if f.name = "" then schema_error "%s: empty attribute name" path;
        if Hashtbl.mem seen key then schema_error "%s: duplicate attribute %s" path f.name;
        Hashtbl.add seen key ();
        match f.attr with
        | Atomic _ -> ()
        | Table sub -> check_table (path ^ "." ^ f.name) sub)
      tbl.fields
  in
  check_table t.name t.table;
  t

(* Structural statistics used in the storage experiments. *)
let rec count_table_attrs (tbl : table) =
  List.fold_left
    (fun acc f ->
      match f.attr with Atomic _ -> acc | Table sub -> acc + 1 + count_table_attrs sub)
    0 tbl.fields

let rec depth (tbl : table) =
  List.fold_left
    (fun acc f -> match f.attr with Atomic _ -> acc | Table sub -> max acc (1 + depth sub))
    0 tbl.fields

(* ------------------------------------------------------------------ *)
(* Paths: address a (possibly nested) attribute, e.g.
   DEPARTMENTS.PROJECTS.MEMBERS.FUNCTION is [PROJECTS; MEMBERS; FUNCTION]. *)

type path = string list

let rec resolve_path (tbl : table) (p : path) : attr =
  match p with
  | [] -> schema_error "empty path"
  | [ name ] ->
      let _, f = field_exn tbl name in
      f.attr
  | name :: rest -> (
      let _, f = field_exn tbl name in
      match f.attr with
      | Table sub -> resolve_path sub rest
      | Atomic _ -> schema_error "path step %s is atomic, cannot descend" name)

let path_to_string p = String.concat "." p

(* ------------------------------------------------------------------ *)
(* Rendering *)

let rec pp_attr fmt = function
  | Atomic ty -> Format.pp_print_string fmt (Atom.type_name ty)
  | Table tbl -> pp_table fmt tbl

and pp_table fmt tbl =
  let o, c = match tbl.kind with Set -> ("{", "}") | List -> ("<", ">") in
  Format.fprintf fmt "%s " o;
  List.iteri
    (fun i (f : field) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s: %a" f.name pp_attr f.attr)
    tbl.fields;
  Format.fprintf fmt " %s" c

let to_string t = Format.asprintf "%s %a" t.name pp_table t.table

(* IMS-style segment-tree rendering (Fig 1 of the paper): every
   nesting level becomes a "segment" whose fields are the first-level
   atomic attributes. *)
let render_segment_tree t =
  let buf = Buffer.create 256 in
  let rec go indent name (tbl : table) =
    let atoms =
      List.filter_map
        (fun (f : field) -> match f.attr with Atomic _ -> Some f.name | Table _ -> None)
        tbl.fields
    in
    let kind = match tbl.kind with Set -> "{}" | List -> "<>" in
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s [%s]\n" (String.make indent ' ') name kind (String.concat " | " atoms));
    List.iter
      (fun (f : field) ->
        match f.attr with Table sub -> go (indent + 4) f.name sub | Atomic _ -> ())
      tbl.fields
  in
  go 0 t.name t.table;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Binary codec (stored in the catalog). *)

let rec encode_table b (tbl : table) =
  Codec.put_u8 b (match tbl.kind with Set -> 0 | List -> 1);
  Codec.put_uvarint b (List.length tbl.fields);
  List.iter
    (fun (f : field) ->
      Codec.put_string b f.name;
      match f.attr with
      | Atomic ty ->
          Codec.put_u8 b 0;
          Codec.put_u8 b
            (match ty with Atom.Tint -> 0 | Tfloat -> 1 | Tstring -> 2 | Tbool -> 3 | Tdate -> 4)
      | Table sub ->
          Codec.put_u8 b 1;
          encode_table b sub)
    tbl.fields

let rec decode_table src : table =
  let kind = match Codec.get_u8 src with 0 -> Set | 1 -> List | n -> Codec.decode_error "kind %d" n in
  let n = Codec.get_uvarint src in
  let fields =
    Stdlib.List.init n (fun _ ->
        let name = Codec.get_string src in
        match Codec.get_u8 src with
        | 0 ->
            let ty =
              match Codec.get_u8 src with
              | 0 -> Atom.Tint
              | 1 -> Tfloat
              | 2 -> Tstring
              | 3 -> Tbool
              | 4 -> Tdate
              | n -> Codec.decode_error "atom ty %d" n
            in
            { name; attr = Atomic ty }
        | 1 -> { name; attr = Table (decode_table src) }
        | n -> Codec.decode_error "attr tag %d" n)
  in
  { kind; fields }

let encode b t =
  Codec.put_string b t.name;
  encode_table b t.table

let decode src =
  let name = Codec.get_string src in
  { name; table = decode_table src }

(* ------------------------------------------------------------------ *)
(* Convenience constructors *)

let atom name ty = { name; attr = Atomic ty }
let int_ name = atom name Atom.Tint
let str_ name = atom name Atom.Tstring
let float_ name = atom name Atom.Tfloat
let bool_ name = atom name Atom.Tbool
let date_ name = atom name Atom.Tdate
let set_ name fields = { name; attr = Table { kind = Set; fields } }
let list_ name fields = { name; attr = Table { kind = List; fields } }
let relation name fields = validate { name; table = { kind = Set; fields } }
let ordered name fields = validate { name; table = { kind = List; fields } }
