lib/model/value.ml: Ascii_table Atom Codec Fmt Printf Schema Stdlib String
