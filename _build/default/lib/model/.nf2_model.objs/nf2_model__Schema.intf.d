lib/model/schema.mli: Atom Codec Format
