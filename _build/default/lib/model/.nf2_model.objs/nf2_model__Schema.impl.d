lib/model/schema.ml: Atom Buffer Codec Fmt Format Hashtbl List Printf Stdlib String
