lib/model/atom.mli: Codec Format
