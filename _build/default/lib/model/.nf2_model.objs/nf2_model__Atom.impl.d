lib/model/atom.ml: Bool Buffer Codec Float Format Int Printf String
