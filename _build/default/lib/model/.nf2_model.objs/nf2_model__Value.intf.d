lib/model/value.mli: Atom Codec Format Schema
