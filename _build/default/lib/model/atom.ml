(* Atomic attribute values of the extended NF2 data model.

   Dates are stored as days since 1970-01-01 (proleptic Gregorian);
   the paper's ASOF examples ("January 15th, 1984") only need day
   granularity, but timestamps in the temporal subsystem use a finer
   logical clock anyway. *)

type ty = Tint | Tfloat | Tstring | Tbool | Tdate

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int (* days since epoch *)
  | Null

let type_name = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Tstring -> "TEXT"
  | Tbool -> "BOOL"
  | Tdate -> "DATE"

let ty_of_atom = function
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring
  | Bool _ -> Some Tbool
  | Date _ -> Some Tdate
  | Null -> None

let conforms ty atom =
  match atom, ty with
  | Null, _ -> true
  | Int _, Tint | Float _, Tfloat | Str _, Tstring | Bool _, Tbool | Date _, Tdate -> true
  | (Int _ | Float _ | Str _ | Bool _ | Date _), _ -> false

(* Total order: Null sorts first; across-type comparison follows the
   constructor order (only meaningful inside homogeneous columns). *)
let compare a b =
  let rank = function
    | Null -> 0
    | Int _ -> 1
    | Float _ -> 2
    | Str _ -> 3
    | Bool _ -> 4
    | Date _ -> 5
  in
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date x, Date y -> Int.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* --- Gregorian calendar conversion ------------------------------- *)

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "days_in_month"

(* days since 1970-01-01 for y-m-d *)
let days_of_ymd y m d =
  if m < 1 || m > 12 then invalid_arg "days_of_ymd: month";
  if d < 1 || d > days_in_month y m then invalid_arg "days_of_ymd: day";
  (* count days from 1970 *)
  let days = ref 0 in
  if y >= 1970 then
    for yy = 1970 to y - 1 do
      days := !days + if is_leap yy then 366 else 365
    done
  else
    for yy = y to 1969 do
      days := !days - (if is_leap yy then 366 else 365)
    done;
  for mm = 1 to m - 1 do
    days := !days + days_in_month y mm
  done;
  !days + d - 1

let ymd_of_days days =
  let y = ref 1970 and d = ref days in
  if days >= 0 then begin
    let continue = ref true in
    while !continue do
      let len = if is_leap !y then 366 else 365 in
      if !d >= len then begin
        d := !d - len;
        incr y
      end
      else continue := false
    done
  end
  else begin
    while !d < 0 do
      decr y;
      d := !d + if is_leap !y then 366 else 365
    done
  end;
  let m = ref 1 in
  while !d >= days_in_month !y !m do
    d := !d - days_in_month !y !m;
    incr m
  done;
  (!y, !m, !d + 1)

let date_of_ymd y m d = Date (days_of_ymd y m d)

(* Parses 'YYYY-MM-DD'. *)
let date_of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      try Some (date_of_ymd (int_of_string y) (int_of_string m) (int_of_string d))
      with _ -> None)
  | _ -> None

let to_string = function
  | Int v -> string_of_int v
  | Float v ->
      let s = Printf.sprintf "%.12g" v in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
      else s ^ "."
  | Str v -> v
  | Bool v -> if v then "TRUE" else "FALSE"
  | Date v ->
      let y, m, d = ymd_of_days v in
      Printf.sprintf "%04d-%02d-%02d" y m d
  | Null -> "NULL"

(* SQL-ish literal form: strings quoted. *)
let to_literal = function
  | Str v ->
      let b = Buffer.create (String.length v + 2) in
      Buffer.add_char b '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
        v;
      Buffer.add_char b '\'';
      Buffer.contents b
  | Date _ as a -> "DATE '" ^ to_string a ^ "'"
  | a -> to_string a

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* --- binary codec ------------------------------------------------- *)

let encode b = function
  | Null -> Codec.put_u8 b 0
  | Int v ->
      Codec.put_u8 b 1;
      Codec.put_varint b v
  | Float v ->
      Codec.put_u8 b 2;
      Codec.put_float b v
  | Str v ->
      Codec.put_u8 b 3;
      Codec.put_string b v
  | Bool v ->
      Codec.put_u8 b 4;
      Codec.put_bool b v
  | Date v ->
      Codec.put_u8 b 5;
      Codec.put_varint b v

let decode src =
  match Codec.get_u8 src with
  | 0 -> Null
  | 1 -> Int (Codec.get_varint src)
  | 2 -> Float (Codec.get_float src)
  | 3 -> Str (Codec.get_string src)
  | 4 -> Bool (Codec.get_bool src)
  | 5 -> Date (Codec.get_varint src)
  | n -> Codec.decode_error "Atom.decode: bad tag %d" n

(* Order-preserving index key. *)
let to_key = function
  | Null -> "\x00"
  | Int v -> "\x01" ^ Codec.key_of_int v
  | Float v -> "\x02" ^ Codec.key_of_float v
  | Str v -> "\x03" ^ Codec.key_of_string v
  | Bool v -> "\x04" ^ if v then "\x01" else "\x00"
  | Date v -> "\x05" ^ Codec.key_of_int v
