(* Direct tests for the utility layer: codecs, PRNG, masked patterns,
   ASCII tables. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- codec ----------------------------------------------------------- *)

let test_uvarint_edges () =
  let roundtrip v =
    let b = Codec.create_sink () in
    Codec.put_uvarint b v;
    Codec.get_uvarint (Codec.source_of_string (Codec.contents b))
  in
  List.iter (fun v -> checki (string_of_int v) v (roundtrip v))
    [ 0; 1; 127; 128; 255; 16383; 16384; 1 lsl 40; max_int ];
  (* single byte for small values *)
  let b = Codec.create_sink () in
  Codec.put_uvarint b 127;
  checki "127 is one byte" 1 (String.length (Codec.contents b))

let test_string_codec () =
  let b = Codec.create_sink () in
  Codec.put_string b "";
  Codec.put_string b "hello";
  Codec.put_string b (String.make 1000 'x');
  let src = Codec.source_of_string (Codec.contents b) in
  checks "empty" "" (Codec.get_string src);
  checks "hello" "hello" (Codec.get_string src);
  checki "big" 1000 (String.length (Codec.get_string src));
  checkb "at end" true (Codec.at_end src)

let test_decode_errors () =
  (* truncated input raises Decode_error, never a silent wrong value *)
  List.iter
    (fun s ->
      let src = Codec.source_of_string s in
      try
        ignore (Codec.get_string src);
        Alcotest.fail "expected Decode_error"
      with Codec.Decode_error _ -> ())
    [ "\x05ab"; "\xff" ]

let test_fixed_width_fields () =
  let buf = Bytes.make 16 '\000' in
  Codec.blit_u16 buf 0 0xBEEF;
  checki "u16" 0xBEEF (Codec.read_u16 buf 0);
  Codec.blit_u32 buf 4 0x12345678;
  checki "u32" 0x12345678 (Codec.read_u32 buf 4)

let test_key_order_strings () =
  checkb "string keys ordered" true
    (String.compare (Codec.key_of_string "abc") (Codec.key_of_string "abd") < 0);
  checkb "float keys ordered" true
    (String.compare (Codec.key_of_float (-1.5)) (Codec.key_of_float 0.25) < 0)

(* --- prng ------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.in_range r 5 9 in
    checkb "in range" true (v >= 5 && v <= 9);
    let f = Prng.float r in
    checkb "unit float" true (f >= 0.0 && f < 1.0)
  done;
  (* shuffle is a permutation *)
  let arr = Array.init 50 (fun i -> i) in
  let sh = Prng.shuffle r arr in
  checkb "permutation" true (List.sort Int.compare (Array.to_list sh) = Array.to_list arr);
  try
    ignore (Prng.int r 0);
    Alcotest.fail "bound 0"
  with Invalid_argument _ -> ()

(* --- masked patterns ----------------------------------------------------- *)

let test_masked_components () =
  let m = Masked.compile "ab*cd?e" in
  Alcotest.(check (list string)) "literals" [ "ab"; "cd"; "e" ] (Masked.literals m);
  checkb "prefix" true (Masked.anchored_prefix m = Some "ab");
  checkb "suffix" true (Masked.anchored_suffix m = Some "e");
  let m2 = Masked.compile "*x*" in
  checkb "no prefix" true (Masked.anchored_prefix m2 = None);
  checkb "no suffix" true (Masked.anchored_suffix m2 = None);
  (* consecutive stars collapse *)
  checkb "a**b = a*b" true (Masked.matches (Masked.compile "a**b") "aXYZb")

let test_masked_edge_cases () =
  checkb "empty pattern matches empty" true (Masked.matches (Masked.compile "") "");
  checkb "empty pattern vs text" false (Masked.matches (Masked.compile "") "x");
  checkb "star matches empty" true (Masked.matches (Masked.compile "*") "");
  checkb "question needs one" false (Masked.matches (Masked.compile "?") "");
  checkb "literal exact" true (Masked.matches (Masked.compile "abc") "abc");
  checkb "literal partial" false (Masked.matches (Masked.compile "abc") "abcd")

let prop_masked_star_sandwich =
  (* '*s*' matches exactly the strings containing s (case-insensitive) *)
  QCheck.Test.make ~name:"*s* = substring" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 5)) (string_of_size (QCheck.Gen.int_range 0 12)))
    (fun (needle, hay) ->
      QCheck.assume (not (String.contains needle '*') && not (String.contains needle '?'));
      let lneedle = String.lowercase_ascii needle and lhay = String.lowercase_ascii hay in
      let contains =
        let n = String.length lneedle and h = String.length lhay in
        let rec go i = i + n <= h && (String.sub lhay i n = lneedle || go (i + 1)) in
        go 0
      in
      Masked.matches (Masked.compile ("*" ^ needle ^ "*")) hay = contains)

(* --- ascii tables ------------------------------------------------------- *)

let test_ascii_table () =
  let s = Ascii_table.render ~header:[ "A"; "B" ] [ [ "1"; "xx" ]; [ "22"; "y" ] ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  checki "6 lines" 6 (List.length lines);
  (* all lines the same width *)
  let widths = List.map String.length lines in
  checkb "rectangular" true (List.for_all (( = ) (List.hd widths)) widths);
  (* multi-line cells expand rows *)
  let s2 = Ascii_table.render ~header:[ "X" ] [ [ "a\nb" ] ] in
  checkb "two-line cell" true (List.length (String.split_on_char '\n' (String.trim s2)) > 5);
  try
    ignore (Ascii_table.render ~header:[ "A" ] [ [ "1"; "2" ] ]);
    Alcotest.fail "ragged"
  with Invalid_argument _ -> ()

let props = List.map QCheck_alcotest.to_alcotest [ prop_masked_star_sandwich ]

let () =
  Alcotest.run "util"
    [
      ( "codec",
        [
          Alcotest.test_case "uvarint edges" `Quick test_uvarint_edges;
          Alcotest.test_case "strings" `Quick test_string_codec;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "fixed-width" `Quick test_fixed_width_fields;
          Alcotest.test_case "key order" `Quick test_key_order_strings;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
        ] );
      ( "masked",
        [
          Alcotest.test_case "components" `Quick test_masked_components;
          Alcotest.test_case "edge cases" `Quick test_masked_edge_cases;
        ] );
      ("ascii", [ Alcotest.test_case "tables" `Quick test_ascii_table ]);
      ("properties", props);
    ]
