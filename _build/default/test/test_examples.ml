(* End-to-end reproduction of Section 3's Examples 1-8 and Figs 2-5,
   executed through the query language against stored tables. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel
module P = Nf2_workload.Paper_data
module Db = Nf2.Db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let db = lazy (Nf2.Demo.create ())

let rows q = Rel.tuples (Db.query (Lazy.force db) q)
let rel q = Db.query (Lazy.force db) q

let dno tup = match tup with Value.Atom (Atom.Int d) :: _ -> d | _ -> -1

let is_infix needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Example 1: SELECT * keeps the source structure implicitly. *)
let test_example1 () =
  let r = rel "SELECT * FROM DEPARTMENTS" in
  checki "3 departments" 3 (Rel.cardinality r);
  checkb "identical to stored table" true
    (Value.equal_table r.Rel.data P.departments_table);
  (* the explicit long form of Example 1 *)
  let r2 = rel "SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS" in
  checkb "long form agrees" true (Value.equal_table r2.Rel.data P.departments_table)

(* Example 2 / Fig 2: explicitly defined result structure = Table 5. *)
let test_example2_fig2 () =
  let r =
    rel
      "SELECT x.DNO, x.MGRNO, \
       (SELECT y.PNO, y.PNAME, \
       (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS) = MEMBERS \
       FROM y IN x.PROJECTS) = PROJECTS, \
       x.BUDGET, \
       (SELECT v.QU, v.TYPE FROM v IN x.EQUIP) = EQUIP \
       FROM x IN DEPARTMENTS"
  in
  checkb "result = Table 5" true (Value.equal_table r.Rel.data P.departments_table);
  (* result schema names match *)
  Alcotest.(check (list string)) "attribute names"
    [ "DNO"; "MGRNO"; "PROJECTS"; "BUDGET"; "EQUIP" ]
    (Schema.field_names r.Rel.schema)

(* Example 3 / Fig 3: nest — build Table 5 from Tables 1-4. *)
let test_example3_fig3 () =
  let r =
    rel
      "SELECT x.DNO, x.MGRNO, \
       (SELECT y.PNO, y.PNAME, \
       (SELECT z.EMPNO, z.FUNCTION FROM z IN MEMBERS_1NF WHERE z.PNO = y.PNO AND z.DNO = y.DNO) = MEMBERS \
       FROM y IN PROJECTS_1NF WHERE y.DNO = x.DNO) = PROJECTS, \
       x.BUDGET, \
       (SELECT v.QU, v.TYPE FROM v IN EQUIP_1NF WHERE v.DNO = x.DNO) = EQUIP \
       FROM x IN DEPARTMENTS_1NF"
  in
  checkb "nest(Tables 1-4) = Table 5" true (Value.equal_table r.Rel.data P.departments_table)

(* Example 4: unnest — flat result (Table 7), and the flat-source
   formulation gives the same rows. *)
let test_example4 () =
  let nf2_q =
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
     FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS"
  in
  let flat_q =
    "SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION \
     FROM x IN DEPARTMENTS_1NF, y IN PROJECTS_1NF, z IN MEMBERS_1NF \
     WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO"
  in
  let r1 = rel nf2_q and r2 = rel flat_q in
  checki "17 rows" 17 (Rel.cardinality r1);
  checkb "NF2 query = flat 3-way join" true (Rel.equal r1 r2);
  checkb "matches Table 7" true
    (Value.equal_table r1.Rel.data { Value.kind = Schema.Set; tuples = P.example4_expected })

(* Example 5: EXISTS over a subtable. *)
let test_example5 () =
  let r = rows "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS WHERE EXISTS y IN x.EQUIP : y.TYPE = 'PC/AT'" in
  (* all three departments have a PC/AT *)
  Alcotest.(check (list int)) "departments" [ 218; 314; 417 ] (List.sort Int.compare (List.map dno r))

(* Example 6: nested ALL — empty result on Table 5's contents. *)
let test_example6 () =
  let r =
    rows
      "SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS \
       WHERE ALL y IN x.PROJECTS : ALL z IN y.MEMBERS : z.FUNCTION = 'Consultant'"
  in
  checki "empty (as the paper notes)" 0 (List.length r)

(* Example 7 / Fig 4: join between MEMBERS (inside DEPARTMENTS) and the
   flat EMPLOYEES_1NF, grouped by department. *)
let test_example7_fig4 () =
  let r =
    rows
      "SELECT x.DNO, x.MGRNO, \
       (SELECT e.EMPNO, e.LNAME, e.FNAME, e.SEX, z.FUNCTION \
       FROM y IN x.PROJECTS, z IN y.MEMBERS, e IN EMPLOYEES_1NF \
       WHERE z.EMPNO = e.EMPNO) = EMPLOYEES \
       FROM x IN DEPARTMENTS"
  in
  checki "3 departments" 3 (List.length r);
  (* department 314 employs 7 project members *)
  let d314 = List.find (fun t -> dno t = 314) r in
  (match d314 with
  | [ _; _; Value.Table emps ] -> checki "7 employees" 7 (List.length emps.Value.tuples)
  | _ -> Alcotest.fail "shape");
  (* every EMPNO resolved to a name *)
  List.iter
    (fun t ->
      match t with
      | [ _; _; Value.Table emps ] ->
          List.iter
            (fun e ->
              match e with
              | [ _; Value.Atom (Atom.Str ln); _; _; _ ] -> checkb "lname nonempty" true (ln <> "")
              | _ -> Alcotest.fail "employee shape")
            emps.Value.tuples
      | _ -> Alcotest.fail "dept shape")
    r

(* Fig 5: two joins — manager name and sex instead of MGRNO. *)
let test_fig5 () =
  let r =
    rows
      "SELECT x.DNO, m.LNAME, m.FNAME, m.SEX, \
       (SELECT e.EMPNO, e.LNAME, z.FUNCTION \
       FROM y IN x.PROJECTS, z IN y.MEMBERS, e IN EMPLOYEES_1NF \
       WHERE z.EMPNO = e.EMPNO) = EMPLOYEES \
       FROM x IN DEPARTMENTS, m IN EMPLOYEES_1NF \
       WHERE x.MGRNO = m.EMPNO"
  in
  checki "3 departments" 3 (List.length r);
  let d314 = List.find (fun t -> dno t = 314) r in
  match d314 with
  | [ _; Value.Atom (Atom.Str "Schmidt"); Value.Atom (Atom.Str "Hort"); Value.Atom (Atom.Str "male"); _ ] -> ()
  | _ -> Alcotest.fail "manager of 314 is Schmidt, Hort (male)"

(* Example 8: list subscript on the ordered AUTHORS table. *)
let test_example8 () =
  let r = rows "SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones'" in
  checki "one report" 1 (List.length r);
  (match r with
  | [ [ Value.Table authors; Value.Atom (Atom.Str title) ] ] ->
      checkb "result not flat (paper's remark)" true (authors.Value.kind = Schema.List);
      Alcotest.(check string) "title" "Concurrency and Consistency Control" title
  | _ -> Alcotest.fail "shape");
  (* non-first author does not qualify *)
  let r = rows "SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Medley'" in
  checki "medley is second author" 0 (List.length r)

(* Section 4.2's index-motivating queries. *)
let test_section42_queries () =
  let db = Lazy.force db in
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)");
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (PROJECTS.PNO)");
  (* departments with at least one consultant: 314 and 218 *)
  let r =
    Rel.tuples
      (Db.query db
         "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'")
  in
  Alcotest.(check (list int)) "consultant departments" [ 218; 314 ] (List.sort Int.compare (List.map dno r));
  checkb "index used" true
    (match Db.last_plan db with [ p ] -> String.length p >= 4 && String.sub p 0 4 = "scan" | _ -> false);
  (* projects with at least one consultant: PNOs 17 and 25 *)
  let r =
    Rel.tuples
      (Db.query db
         "SELECT y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'")
  in
  Alcotest.(check (list int)) "consultant projects" [ 17; 25 ] (List.sort Int.compare (List.map dno r));
  (* the Fig 7 conjunctive query: PNO=17 AND a consultant in the same project *)
  let r =
    Rel.tuples
      (Db.query db
         "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : (y.PNO = 17 AND EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant')")
  in
  Alcotest.(check (list int)) "fig 7 result" [ 314 ] (List.map dno r);
  checkb "prefix join used" true
    (match Db.last_plan db with
    | [ p ] -> is_infix "prefix-join" p
    | _ -> false)

(* Section 5's text query: masked search + author test. *)
let test_section5_text_query () =
  let db = Lazy.force db in
  ignore (Db.exec db "CREATE TEXT INDEX ON REPORTS (TITLE)");
  let r =
    Rel.tuples
      (Db.query db
         "SELECT x.REPNO, x.AUTHORS, x.TITLE FROM x IN REPORTS \
          WHERE x.TITLE CONTAINS '*onsisten*' AND EXISTS y IN x.AUTHORS : y.NAME = 'Jones'")
  in
  checki "one report" 1 (List.length r)

(* Every MD layout must give identical query answers: the data model
   is not bound to one storage structure (Section 5: "our data model is
   not bound to the implementation of hierarchical structures"). *)
let test_layout_matrix () =
  List.iter
    (fun layout ->
      let db = Nf2.Demo.create ~layout () in
      let name = Nf2_storage.Mini_directory.layout_name layout in
      let r = Db.query db "SELECT * FROM DEPARTMENTS" in
      checkb (name ^ ": table 5") true (Value.equal_table r.Rel.data P.departments_table);
      let r =
        Db.query db
          "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : EXISTS z IN y.MEMBERS : z.FUNCTION = 'Consultant'"
      in
      checki (name ^ ": consultants") 2 (Rel.cardinality r);
      ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (PROJECTS.PNO)");
      let r = Db.query db "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : y.PNO = 17" in
      checki (name ^ ": indexed") 1 (Rel.cardinality r);
      ignore (Db.exec db "UPDATE DEPARTMENTS.PROJECTS SET PNAME = 'Z' WHERE PNO = 17");
      let r = Db.query db "SELECT y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 17" in
      (match Rel.tuples r with
      | [ [ Value.Atom (Atom.Str "Z") ] ] -> ()
      | _ -> Alcotest.failf "%s: subtable update" name))
    Nf2_storage.Mini_directory.all_layouts

(* The shell tour script must execute end to end. *)
let test_paper_tour_script () =
  let path =
    (* tests run from the build sandbox; locate the source file *)
    let candidates =
      [ "examples/paper_tour.sql"; "../examples/paper_tour.sql"; "../../examples/paper_tour.sql";
        "../../../examples/paper_tour.sql"; "../../../../examples/paper_tour.sql" ]
    in
    List.find_opt Sys.file_exists candidates
  in
  match path with
  | None -> () (* source tree not visible from the sandbox; covered by CI run *)
  | Some path ->
      let script = In_channel.with_open_text path In_channel.input_all in
      let fresh = Db.create () in
      let results = Db.exec fresh script in
      checkb "many statements" true (List.length results > 15);
      (* the final SHOW TABLES lists all three tables *)
      (match List.rev results with
      | Db.Msg m :: _ ->
          List.iter (fun t -> checkb t true (is_infix t m)) [ "DEPARTMENTS"; "REPORTS"; "BUDGETS" ]
      | _ -> Alcotest.fail "SHOW TABLES last")

let () =
  Alcotest.run "examples"
    [
      ( "section 3",
        [
          Alcotest.test_case "Example 1 (SELECT *)" `Quick test_example1;
          Alcotest.test_case "Example 2 / Fig 2 (explicit structure)" `Quick test_example2_fig2;
          Alcotest.test_case "Example 3 / Fig 3 (nest)" `Quick test_example3_fig3;
          Alcotest.test_case "Example 4 (unnest = Table 7)" `Quick test_example4;
          Alcotest.test_case "Example 5 (EXISTS)" `Quick test_example5;
          Alcotest.test_case "Example 6 (ALL, empty)" `Quick test_example6;
          Alcotest.test_case "Example 7 / Fig 4 (join)" `Quick test_example7_fig4;
          Alcotest.test_case "Fig 5 (two joins)" `Quick test_fig5;
          Alcotest.test_case "Example 8 (AUTHORS[1])" `Quick test_example8;
        ] );
      ( "sections 4-5",
        [
          Alcotest.test_case "index queries (4.2)" `Quick test_section42_queries;
          Alcotest.test_case "text query (5)" `Quick test_section5_text_query;
          Alcotest.test_case "paper tour script" `Quick test_paper_tour_script;
          Alcotest.test_case "layout matrix (SS1/SS2/SS3)" `Quick test_layout_matrix;
        ] );
    ]
