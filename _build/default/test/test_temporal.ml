(* Tests for time-version support: reverse-delta version chains and
   ASOF snapshot reads (Section 5 of the paper). *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module P = Nf2_workload.Paper_data
module D = Nf2_storage.Disk
module BP = Nf2_storage.Buffer_pool
module OS = Nf2_storage.Object_store
module VS = Nf2_temporal.Version_store
module Db = Nf2.Db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk_vs () =
  let disk = D.create () in
  let pool = BP.create ~frames:128 disk in
  let store = OS.create pool in
  VS.create store pool

let day s = match Atom.date_of_string s with Some (Atom.Date d) -> d | _ -> assert false

let test_insert_current () =
  let vs = mk_vs () in
  let id = VS.insert vs P.departments ~ts:(day "1983-01-01") (List.nth P.departments_rows 0) in
  checkb "current" true (Value.equal_tuple (List.nth P.departments_rows 0) (VS.current vs P.departments id));
  checki "one version" 1 (VS.version_count vs id)

let test_asof_whole_updates () =
  let vs = mk_vs () in
  let d314 = List.nth P.departments_rows 0 in
  let d314' =
    VS.replace_atoms P.departments.Schema.table d314 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 500_000 ]
  in
  let id = VS.insert vs P.departments ~ts:(day "1983-01-01") d314 in
  VS.update vs P.departments id ~ts:(day "1984-06-01") d314';
  (* before the update *)
  (match VS.asof vs P.departments id ~ts:(day "1984-01-15") with
  | Some tup -> checkb "old state" true (Value.equal_tuple d314 tup)
  | None -> Alcotest.fail "alive");
  (* at/after the update *)
  (match VS.asof vs P.departments id ~ts:(day "1984-06-01") with
  | Some tup -> checkb "new state" true (Value.equal_tuple d314' tup)
  | None -> Alcotest.fail "alive");
  (* before creation *)
  checkb "not yet born" true (VS.asof vs P.departments id ~ts:(day "1982-12-31") = None)

let test_asof_atom_deltas () =
  let vs = mk_vs () in
  let d314 = List.nth P.departments_rows 0 in
  let id = VS.insert vs P.departments ~ts:100 d314 in
  (* three successive budget changes via small deltas *)
  VS.update_atoms vs P.departments id ~ts:200 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 330_000 ];
  VS.update_atoms vs P.departments id ~ts:300 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 340_000 ];
  VS.update_atoms vs P.departments id ~ts:400 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 350_000 ];
  let budget_at ts =
    match VS.asof vs P.departments id ~ts with
    | Some tup -> (
        match Value.field P.departments.Schema.table tup "BUDGET" with
        | Value.Atom (Atom.Int b) -> b
        | _ -> -1)
    | None -> -1
  in
  checki "at 150" 320_000 (budget_at 150);
  checki "at 200" 330_000 (budget_at 200);
  checki "at 250" 330_000 (budget_at 250);
  checki "at 350" 340_000 (budget_at 350);
  checki "at 999" 350_000 (budget_at 999);
  (* nested subobject update: member function change *)
  VS.update_atoms vs P.departments id ~ts:500
    [ OS.Attr "PROJECTS"; OS.Elem 0; OS.Attr "MEMBERS"; OS.Elem 1 ]
    [ Atom.Int 56019; Atom.Str "Manager" ];
  let fn_at ts =
    match VS.asof vs P.departments id ~ts with
    | Some tup ->
        let fns = Value.atoms_on_path P.departments.Schema.table tup [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
        if List.exists (Atom.equal (Atom.Str "Manager")) fns then "Manager" else "Consultant"
    | None -> "?"
  in
  Alcotest.(check string) "before promo" "Consultant" (fn_at 450);
  Alcotest.(check string) "after promo" "Manager" (fn_at 500);
  (* other attributes untouched by the nested update *)
  checki "budget preserved across nested delta" 350_000 (budget_at 450)

let test_delete_and_snapshot () =
  let vs = mk_vs () in
  let id1 = VS.insert vs P.departments ~ts:10 (List.nth P.departments_rows 0) in
  let _id2 = VS.insert vs P.departments ~ts:20 (List.nth P.departments_rows 1) in
  VS.delete vs P.departments id1 ~ts:30;
  checki "snapshot at 25" 2 (List.length (VS.snapshot vs P.departments ~ts:25));
  checki "snapshot at 30" 1 (List.length (VS.snapshot vs P.departments ~ts:30));
  checki "snapshot at 15" 1 (List.length (VS.snapshot vs P.departments ~ts:15));
  checki "current" 1 (List.length (VS.current_all vs P.departments));
  (* deleted object rejects current *)
  try
    ignore (VS.current vs P.departments id1);
    Alcotest.fail "expected Temporal_error"
  with VS.Temporal_error _ -> ()

let test_monotonicity_enforced () =
  let vs = mk_vs () in
  let id = VS.insert vs P.departments ~ts:100 (List.nth P.departments_rows 0) in
  try
    VS.update_atoms vs P.departments id ~ts:50 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 1 ];
    Alcotest.fail "expected Temporal_error"
  with VS.Temporal_error _ -> ()

let test_history_metadata () =
  let vs = mk_vs () in
  let id = VS.insert vs P.departments ~ts:10 (List.nth P.departments_rows 0) in
  VS.update_atoms vs P.departments id ~ts:20 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 1 ];
  VS.update_atoms vs P.departments id ~ts:30 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 2 ];
  let h = VS.history vs id in
  checki "3 versions" 3 (List.length h);
  Alcotest.(check (list int)) "timestamps in order" [ 10; 20; 30 ] (List.map fst h)

let test_delta_space_smaller_than_copies () =
  (* the reverse-delta design stores far less than one full copy per
     version when updates touch single atoms *)
  let vs = mk_vs () in
  let id = VS.insert vs P.departments ~ts:0 (List.nth P.departments_rows 0) in
  for i = 1 to 50 do
    VS.update_atoms vs P.departments id ~ts:i [] [ Atom.Int 314; Atom.Int 56194; Atom.Int (320_000 + i) ]
  done;
  let delta_bytes = VS.delta_bytes vs in
  let full_copy_bytes =
    let b = Codec.create_sink () in
    Value.encode_tuple b (List.nth P.departments_rows 0);
    50 * String.length (Codec.contents b)
  in
  checkb "deltas much smaller than full copies" true (delta_bytes * 4 < full_copy_bytes)

let test_walk_through_time () =
  let vs = mk_vs () in
  let d314 = List.nth P.departments_rows 0 in
  let id = VS.insert vs P.departments ~ts:100 d314 in
  VS.update_atoms vs P.departments id ~ts:200 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 330_000 ];
  VS.update_atoms vs P.departments id ~ts:300 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 340_000 ];
  VS.update_atoms vs P.departments id ~ts:400 [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 350_000 ];
  let budget tup =
    match Value.field P.departments.Schema.table tup "BUDGET" with
    | Value.Atom (Atom.Int b) -> b
    | _ -> -1
  in
  (* interval spanning versions 2-3: base state at lo + two changes *)
  let walked = VS.walk_through_time vs P.departments id ~lo:250 ~hi:350 in
  Alcotest.(check (list (pair int int)))
    "states in [250,350]"
    [ (250, 330_000); (300, 340_000) ]
    (List.map (fun (ts, tup) -> (ts, budget tup)) walked);
  (* interval before creation: empty *)
  checki "before creation" 0 (List.length (VS.walk_through_time vs P.departments id ~lo:0 ~hi:50));
  (* whole history *)
  checki "all four states" 4 (List.length (VS.walk_through_time vs P.departments id ~lo:100 ~hi:999));
  (* empty interval rejected *)
  try
    ignore (VS.walk_through_time vs P.departments id ~lo:300 ~hi:200);
    Alcotest.fail "expected Temporal_error"
  with VS.Temporal_error _ -> ()

(* --- language-level ASOF (paper Section 5 example) ------------------------- *)

let test_language_asof_example () =
  let db = Db.create () in
  ignore
    (Db.exec db
       "CREATE TABLE DEPARTMENTS (DNO INT, MGRNO INT, PROJECTS TABLE (PNO INT, PNAME TEXT), BUDGET INT) WITH VERSIONS");
  ignore
    (Db.exec db
       "INSERT INTO DEPARTMENTS VALUES (314, 56194, {(17, 'CGA'), (23, 'HEAP')}, 320000)");
  (* later the department is reorganised *)
  ignore (Db.exec db "UPDATE DEPARTMENTS SET BUDGET = 500000 WHERE DNO = 314 AT DATE '1984-03-01'");
  (* the paper's query: all projects department 314 had on Jan 15, 1984 *)
  let r =
    Db.query db
      "SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF DATE '1984-01-15', y IN x.PROJECTS WHERE x.DNO = 314"
  in
  checki "two projects on 1984-01-15" 2 (List.length (Nf2_algebra.Rel.tuples r));
  let r = Db.query db "SELECT x.BUDGET FROM x IN DEPARTMENTS ASOF DATE '1984-01-15' WHERE x.DNO = 314" in
  (match Nf2_algebra.Rel.tuples r with
  | [ [ Value.Atom (Atom.Int 320000) ] ] -> ()
  | _ -> Alcotest.fail "old budget");
  let r = Db.query db "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314" in
  match Nf2_algebra.Rel.tuples r with
  | [ [ Value.Atom (Atom.Int 500000) ] ] -> ()
  | _ -> Alcotest.fail "current budget"

let () =
  Alcotest.run "temporal"
    [
      ( "version store",
        [
          Alcotest.test_case "insert/current" `Quick test_insert_current;
          Alcotest.test_case "asof (whole updates)" `Quick test_asof_whole_updates;
          Alcotest.test_case "asof (atom deltas)" `Quick test_asof_atom_deltas;
          Alcotest.test_case "delete/snapshot" `Quick test_delete_and_snapshot;
          Alcotest.test_case "monotone timestamps" `Quick test_monotonicity_enforced;
          Alcotest.test_case "history metadata" `Quick test_history_metadata;
          Alcotest.test_case "delta space" `Quick test_delta_space_smaller_than_copies;
          Alcotest.test_case "walk-through-time" `Quick test_walk_through_time;
        ] );
      ("language", [ Alcotest.test_case "ASOF example (Section 5)" `Quick test_language_asof_example ]);
    ]
