(* Tests for the NF2 algebra: operators and their laws. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel
module Ops = Nf2_algebra.Ops
module P = Nf2_workload.Paper_data

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let departments = Rel.make P.departments.Schema.table P.departments_table

let members_1nf =
  Rel.of_tuples P.members_1nf.Schema.table P.members_1nf_rows

let projects_1nf = Rel.of_tuples P.projects_1nf.Schema.table P.projects_1nf_rows

let atom_of v = match v with Value.Atom a -> a | _ -> Alcotest.fail "expected atom"

(* --- select / project --------------------------------------------------- *)

let test_select () =
  let r =
    Ops.select departments (fun tup ->
        match List.nth tup 0 with Value.Atom (Atom.Int d) -> d = 314 | _ -> false)
  in
  checki "one dept" 1 (Rel.cardinality r);
  (* selection on nested content: departments with a consultant *)
  let has_consultant tup =
    let fns = Value.atoms_on_path P.departments.Schema.table tup [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
    List.exists (Atom.equal (Atom.Str "Consultant")) fns
  in
  let r = Ops.select departments has_consultant in
  checki "two depts with consultants" 2 (Rel.cardinality r)

let test_project () =
  let r = Ops.project departments [ "DNO"; "PROJECTS" ] in
  checki "3 rows" 3 (Rel.cardinality r);
  checki "2 cols" 2 (List.length r.Rel.schema.Schema.fields);
  (* projection onto a nested attribute keeps the nesting *)
  (match (Rel.tuples r : Value.tuple list) with
  | ([ _; Value.Table _ ] : Value.v list) :: _ -> ()
  | _ -> Alcotest.fail "nested attr kept");
  (* set-semantics dedup after projection *)
  let r2 = Ops.project members_1nf [ "FUNCTION" ] in
  checki "4 distinct functions" 4 (Rel.cardinality r2)

let test_rename_product_join () =
  let p = Ops.rename projects_1nf [ ("DNO", "PDNO"); ("PNO", "PPNO"); ("PNAME", "PPNAME") ] in
  let prod = Ops.product p members_1nf in
  checki "product size" (4 * 17) (Rel.cardinality prod);
  let joined =
    Ops.join p members_1nf ~on:(fun ta tb ->
        Value.equal_v (List.nth ta 0) (List.nth tb 1) && Value.equal_v (List.nth ta 2) (List.nth tb 2))
  in
  checki "members keep their project" 17 (Rel.cardinality joined);
  (* equi-join agrees with nested-loop theta join on PNO *)
  let ej = Ops.equi_join p members_1nf ~left:"PPNO" ~right:"PNO" in
  let tj = Ops.join p members_1nf ~on:(fun ta tb -> Value.equal_v (List.nth ta 0) (List.nth tb 1)) in
  checkb "equi = theta" true (Rel.equal ej tj);
  (* name clash rejected *)
  try
    ignore (Ops.product projects_1nf members_1nf);
    Alcotest.fail "expected clash error"
  with Rel.Algebra_error _ -> ()

let test_set_ops () =
  let a = Ops.select members_1nf (fun t -> atom_of (List.nth t 3) = Atom.Str "Staff") in
  let b = Ops.select members_1nf (fun t -> atom_of (List.nth t 2) = Atom.Int 314) in
  let u = Ops.union a b in
  let i = Ops.intersection a b in
  let d = Ops.difference a b in
  checki "union" (6 + 7 - 2) (Rel.cardinality u);
  checki "inter" 2 (Rel.cardinality i);
  checki "diff" 4 (Rel.cardinality d);
  (* A = (A - B) + (A ∩ B) *)
  checkb "partition law" true (Rel.equal a (Ops.union d i));
  (* incompatible structures rejected *)
  try
    ignore (Ops.union members_1nf projects_1nf);
    Alcotest.fail "expected compatibility error"
  with Rel.Algebra_error _ -> ()

(* --- nest / unnest ------------------------------------------------------- *)

let test_unnest () =
  let r = Ops.unnest departments ~attr:"PROJECTS" in
  (* one row per project, other attrs kept *)
  checki "4 projects" 4 (Rel.cardinality r);
  checki "cols" 7 (List.length r.Rel.schema.Schema.fields);
  (* unnesting twice flattens to members *)
  let r2 = Ops.unnest r ~attr:"MEMBERS" in
  checki "17 members" 17 (Rel.cardinality r2)

let test_nest_unnest_inverse () =
  (* unnest(nest(R, X->G), G) = R for any flat R *)
  let nested = Ops.nest members_1nf ~attrs:[ "EMPNO"; "FUNCTION" ] ~as_:"WHO" in
  checki "4 groups" 4 (Rel.cardinality nested);
  let back = Ops.unnest nested ~attr:"WHO" in
  (* attribute order differs (nested attrs go to the end); compare as sets of rows on sorted column order *)
  let reordered = Ops.project back [ "EMPNO"; "PNO"; "DNO"; "FUNCTION" ] in
  checkb "roundtrip" true (Rel.equal reordered members_1nf)

let test_nest_of_unnest () =
  (* nest(unnest(R,A), attrs-of-A -> A) = R when R is in "partitioned
     normal form" (each group key determines its group) — Table 5 is. *)
  let flat = Ops.unnest departments ~attr:"EQUIP" in
  let back = Ops.nest flat ~attrs:[ "QU"; "TYPE" ] ~as_:"EQUIP" in
  let reordered = Ops.project back [ "DNO"; "MGRNO"; "PROJECTS"; "BUDGET"; "EQUIP" ] in
  checkb "nest∘unnest = id (PNF)" true (Rel.equal reordered departments)

let test_nest_errors () =
  (try
     ignore (Ops.nest members_1nf ~attrs:[] ~as_:"X");
     Alcotest.fail "empty attrs"
   with Rel.Algebra_error _ -> ());
  (try
     ignore (Ops.nest members_1nf ~attrs:[ "EMPNO"; "PNO"; "DNO"; "FUNCTION" ] ~as_:"X");
     Alcotest.fail "nest all"
   with Rel.Algebra_error _ -> ());
  try
    ignore (Ops.unnest members_1nf ~attr:"EMPNO");
    Alcotest.fail "unnest atomic"
  with Rel.Algebra_error _ -> ()


let test_nest_apply () =
  (* select inside PROJECTS: keep only projects with a Leader *)
  let has_leader tup =
    match tup with
    | [ _; _; Value.Table members ] ->
        List.exists (fun m -> List.exists (Value.equal_v (Value.str "Leader")) m) members.Value.tuples
    | _ -> false
  in
  let r = Ops.nest_apply departments ~attr:"PROJECTS" (fun projects -> Ops.select projects has_leader) in
  checki "still 3 departments" 3 (Rel.cardinality r);
  (* every remaining project has a leader *)
  List.iter
    (fun tup ->
      match Value.field r.Rel.schema tup "PROJECTS" with
      | Value.Table projects -> checkb "only leader projects" true (List.for_all has_leader projects.Value.tuples)
      | _ -> Alcotest.fail "projects")
    (Rel.tuples r);
  (* projection inside EQUIP changes the nested schema *)
  let r2 = Ops.nest_apply departments ~attr:"EQUIP" (fun equip -> Ops.project equip [ "TYPE" ]) in
  (match Schema.find_field r2.Rel.schema "EQUIP" with
  | Some (_, { Schema.attr = Schema.Table sub; _ }) ->
      Alcotest.(check (list string)) "nested schema" [ "TYPE" ] (Schema.field_names sub)
  | _ -> Alcotest.fail "equip schema");
  (* identity application is the identity *)
  let r3 = Ops.nest_apply departments ~attr:"PROJECTS" (fun p -> p) in
  checkb "identity" true (Rel.equal r3 departments);
  (* errors *)
  (try
     ignore (Ops.nest_apply departments ~attr:"DNO" (fun p -> p));
     Alcotest.fail "atomic attr"
   with Rel.Algebra_error _ -> ());
  try
    ignore (Ops.nest_apply departments ~attr:"NOPE" (fun p -> p));
    Alcotest.fail "unknown attr"
  with Rel.Algebra_error _ -> ()

(* --- ordering / lists ------------------------------------------------------ *)

let test_order_by_and_nth () =
  let by_budget =
    Ops.order_by departments ~key:(fun tup -> [ List.nth tup 3 ])
  in
  checkb "now a list" true (Rel.kind by_budget = Schema.List);
  (match Ops.nth by_budget 1 with
  | Some (Value.Atom (Atom.Int 314) :: _) -> ()
  | _ -> Alcotest.fail "lowest budget first");
  (match Ops.nth by_budget 3 with
  | Some (Value.Atom (Atom.Int 218) :: _) -> ()
  | _ -> Alcotest.fail "highest budget last");
  checkb "nth out of range" true (Ops.nth by_budget 4 = None);
  (* subscript requires a list *)
  (try
     ignore (Ops.nth departments 1);
     Alcotest.fail "subscript on set"
   with Rel.Algebra_error _ -> ());
  let limited = Ops.limit by_budget 2 in
  checki "limit" 2 (Rel.cardinality limited)

(* --- aggregates -------------------------------------------------------------- *)

let test_aggregates () =
  let open Ops in
  checkb "count" true (aggregate members_1nf Count None = Atom.Int 17);
  checkb "min" true (aggregate members_1nf Min (Some "EMPNO") = Atom.Int 12723);
  checkb "max" true (aggregate members_1nf Max (Some "EMPNO") = Atom.Int 98902);
  (match aggregate departments Sum (Some "BUDGET") with
  | Atom.Int v -> checki "sum budgets" 1_120_000 v
  | _ -> Alcotest.fail "sum");
  (match aggregate departments Avg (Some "BUDGET") with
  | Atom.Float v -> checkb "avg" true (abs_float (v -. 373333.333) < 1.0)
  | _ -> Alcotest.fail "avg");
  (* empty input *)
  let empty = select members_1nf (fun _ -> false) in
  checkb "count empty" true (aggregate empty Count None = Atom.Int 0);
  checkb "min empty" true (aggregate empty Min (Some "EMPNO") = Atom.Null)

let test_quantifier_helpers () =
  let eq = { Value.kind = Schema.Set; tuples = [ [ Value.int_ 1 ]; [ Value.int_ 2 ] ] } in
  checkb "exists" true (Ops.exists_in eq (fun t -> t = [ Value.int_ 2 ]));
  checkb "forall" false (Ops.for_all_in eq (fun t -> t = [ Value.int_ 2 ]));
  checkb "forall empty" true (Ops.for_all_in { eq with Value.tuples = [] } (fun _ -> false))

(* --- canonicalisation --------------------------------------------------------- *)

let test_canonicalize () =
  let shuffled =
    Rel.make P.departments.Schema.table
      { Value.kind = Schema.Set; tuples = List.rev P.departments_rows }
  in
  checkb "set equality ignores order" true (Rel.equal departments shuffled);
  let c1 = Rel.canonicalize departments and c2 = Rel.canonicalize shuffled in
  checkb "canonical forms identical" true (Rel.tuples c1 = Rel.tuples c2)

(* --- properties ------------------------------------------------------------------ *)

let arb_flat_rows =
  (* rows of (int, string) pairs over small domains so grouping happens *)
  QCheck.make
    ~print:(fun rows -> String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%s)" a b) rows))
    QCheck.Gen.(list_size (int_bound 20) (pair (int_bound 5) (oneofl [ "a"; "b"; "c" ])))

let mk_flat rows =
  Rel.of_tuples
    { Schema.kind = Schema.Set; fields = [ Schema.int_ "K"; Schema.str_ "V" ] }
    (List.map (fun (k, v) -> [ Value.int_ k; Value.str v ]) rows)

let prop_nest_unnest =
  QCheck.Test.make ~name:"unnest(nest(R)) = R" ~count:200 arb_flat_rows (fun rows ->
      let r = mk_flat rows in
      if Rel.is_empty r then true
      else
        let n = Ops.nest r ~attrs:[ "V" ] ~as_:"G" in
        let back = Ops.unnest n ~attr:"G" in
        Rel.equal (Ops.project back [ "K"; "V" ]) r)

let prop_select_conj =
  QCheck.Test.make ~name:"select p (select q R) = select (p&&q) R" ~count:200 arb_flat_rows
    (fun rows ->
      let r = mk_flat rows in
      let p tup = match List.nth tup 0 with Value.Atom (Atom.Int k) -> k mod 2 = 0 | _ -> false in
      let q tup = match List.nth tup 1 with Value.Atom (Atom.Str s) -> s = "a" | _ -> false in
      Rel.equal (Ops.select (Ops.select r q) p) (Ops.select r (fun t -> p t && q t)))

let prop_union_comm =
  QCheck.Test.make ~name:"union commutative" ~count:200 (QCheck.pair arb_flat_rows arb_flat_rows)
    (fun (r1, r2) -> Rel.equal (Ops.union (mk_flat r1) (mk_flat r2)) (Ops.union (mk_flat r2) (mk_flat r1)))

let prop_difference =
  QCheck.Test.make ~name:"A-B disjoint from B" ~count:200 (QCheck.pair arb_flat_rows arb_flat_rows)
    (fun (r1, r2) ->
      let a = mk_flat r1 and b = mk_flat r2 in
      Rel.is_empty (Ops.intersection (Ops.difference a b) b))

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_nest_unnest; prop_select_conj; prop_union_comm; prop_difference ]

let () =
  Alcotest.run "algebra"
    [
      ( "operators",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "rename/product/join" `Quick test_rename_product_join;
          Alcotest.test_case "set ops" `Quick test_set_ops;
        ] );
      ( "nest/unnest",
        [
          Alcotest.test_case "unnest" `Quick test_unnest;
          Alcotest.test_case "nest then unnest" `Quick test_nest_unnest_inverse;
          Alcotest.test_case "unnest then nest (PNF)" `Quick test_nest_of_unnest;
          Alcotest.test_case "errors" `Quick test_nest_errors;
          Alcotest.test_case "nested application" `Quick test_nest_apply;
        ] );
      ( "lists/aggregates",
        [
          Alcotest.test_case "order_by/nth" `Quick test_order_by_and_nth;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "quantifiers" `Quick test_quantifier_helpers;
          Alcotest.test_case "canonicalize" `Quick test_canonicalize;
        ] );
      ("properties", props);
    ]
