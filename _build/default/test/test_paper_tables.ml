(* Exactness checks for the paper's Tables 1-8 and the Fig 1 schema
   tree: every printed artefact of Section 2 is stored, fetched, and
   compared against the embedded fixtures. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel
module Ops = Nf2_algebra.Ops
module P = Nf2_workload.Paper_data
module Db = Nf2.Db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let db = lazy (Nf2.Demo.create ())

let stored name = Db.query (Lazy.force db) (Printf.sprintf "SELECT * FROM %s" name)

let check_table name (schema : Schema.t) rows =
  let r = stored name in
  checkb (name ^ " contents") true
    (Value.equal_table r.Rel.data { Value.kind = Schema.Set; tuples = rows });
  Alcotest.(check (list string))
    (name ^ " attributes")
    (Schema.field_names schema.Schema.table)
    (Schema.field_names r.Rel.schema)

let test_table1 () = check_table "DEPARTMENTS_1NF" P.departments_1nf P.departments_1nf_rows
let test_table2 () = check_table "PROJECTS_1NF" P.projects_1nf P.projects_1nf_rows
let test_table3 () = check_table "MEMBERS_1NF" P.members_1nf P.members_1nf_rows
let test_table4 () = check_table "EQUIP_1NF" P.equip_1nf P.equip_1nf_rows
let test_table5 () = check_table "DEPARTMENTS" P.departments P.departments_rows
let test_table6 () = check_table "REPORTS" P.reports P.reports_rows
let test_table8 () = check_table "EMPLOYEES_1NF" P.employees_1nf P.employees_1nf_rows

(* Table 7 = result of Example 4; also check it against an algebraic
   derivation: project(unnest(unnest(Table 5))). *)
let test_table7 () =
  let dept_rel = Rel.make P.departments.Schema.table P.departments_table in
  let by_algebra =
    Ops.project
      (Ops.unnest (Ops.unnest dept_rel ~attr:"PROJECTS") ~attr:"MEMBERS")
      [ "DNO"; "MGRNO"; "PNO"; "PNAME"; "EMPNO"; "FUNCTION" ]
  in
  checkb "algebraic derivation matches fixture" true
    (Value.equal_table by_algebra.Rel.data { Value.kind = Schema.Set; tuples = P.example4_expected });
  checki "17 rows" 17 (Rel.cardinality by_algebra)

(* Tables 1-4 are exactly the 1NF decomposition of Table 5: derive them
   from Table 5 by algebra and compare. *)
let test_decomposition_consistency () =
  let dept_rel = Rel.make P.departments.Schema.table P.departments_table in
  (* Table 1 *)
  let t1 = Ops.project dept_rel [ "DNO"; "MGRNO"; "BUDGET" ] in
  checkb "Table 1 derivable" true
    (Value.equal_table t1.Rel.data { Value.kind = Schema.Set; tuples = P.departments_1nf_rows });
  (* Table 2 *)
  let t2 = Ops.project (Ops.unnest dept_rel ~attr:"PROJECTS") [ "PNO"; "PNAME"; "DNO" ] in
  checkb "Table 2 derivable" true
    (Value.equal_table t2.Rel.data { Value.kind = Schema.Set; tuples = P.projects_1nf_rows });
  (* Table 3 *)
  let t3 =
    Ops.project
      (Ops.unnest (Ops.unnest dept_rel ~attr:"PROJECTS") ~attr:"MEMBERS")
      [ "EMPNO"; "PNO"; "DNO"; "FUNCTION" ]
  in
  checkb "Table 3 derivable" true
    (Value.equal_table t3.Rel.data { Value.kind = Schema.Set; tuples = P.members_1nf_rows });
  (* Table 4 *)
  let t4 = Ops.project (Ops.unnest dept_rel ~attr:"EQUIP") [ "DNO"; "QU"; "TYPE" ] in
  checkb "Table 4 derivable" true
    (Value.equal_table t4.Rel.data { Value.kind = Schema.Set; tuples = P.equip_1nf_rows })

(* Fig 1: the IMS-style segment hierarchy of the DEPARTMENTS schema. *)
let test_fig1_segment_tree () =
  let tree = Schema.render_segment_tree P.departments in
  let lines = String.split_on_char '\n' tree |> List.filter (fun l -> l <> "") in
  checki "5 segments... (root, PROJECTS, MEMBERS, EQUIP)" 4 (List.length lines);
  let expect_prefixes = [ "DEPARTMENTS"; "    PROJECTS"; "        MEMBERS"; "    EQUIP" ] in
  List.iter2
    (fun line prefix -> checkb ("segment " ^ prefix) true (String.starts_with ~prefix line))
    lines expect_prefixes;
  (* segment fields are the first-level atomic attributes, as in IMS *)
  checkb "root fields" true
    (String.starts_with ~prefix:"DEPARTMENTS {} [DNO | MGRNO | BUDGET]" (List.hd lines))

(* Paper terminology checks on Table 5 (Section 4.1's worked example):
   department 314 has 2 subtables at the top (PROJECTS, EQUIP), two
   complex subobjects (projects 17 and 23), three flat subobjects in
   MEMBERS of project 17, three in EQUIP. *)
let test_section41_terminology () =
  let d314 = List.nth P.departments_rows 0 in
  let subtables, complex = Value.structure_counts P.departments.Schema.table d314 in
  checki "4 subtable instances" 4 subtables;
  checki "2 complex subobjects" 2 complex;
  match Value.field P.departments.Schema.table d314 "EQUIP" with
  | Value.Table t -> checki "3 flat subobjects in EQUIP" 3 (List.length t.Value.tuples)
  | _ -> Alcotest.fail "equip"

(* The 1NF representation needs at least 4 tables, the NF2 one: 1.
   (Section 2's point about Tables 1-4 vs Table 5.) *)
let test_table_count_argument () =
  let one_nf_tables = [ P.departments_1nf; P.projects_1nf; P.members_1nf; P.equip_1nf ] in
  checki "4 flat tables" 4 (List.length one_nf_tables);
  List.iter (fun s -> checkb "all flat" true (Schema.flat s.Schema.table)) one_nf_tables;
  checkb "NF2 table is not flat" false (Schema.flat P.departments.Schema.table)

let () =
  Alcotest.run "paper tables"
    [
      ( "tables",
        [
          Alcotest.test_case "Table 1 (DEPARTMENTS-1NF)" `Quick test_table1;
          Alcotest.test_case "Table 2 (PROJECTS-1NF)" `Quick test_table2;
          Alcotest.test_case "Table 3 (MEMBERS-1NF)" `Quick test_table3;
          Alcotest.test_case "Table 4 (EQUIP-1NF)" `Quick test_table4;
          Alcotest.test_case "Table 5 (DEPARTMENTS NF2)" `Quick test_table5;
          Alcotest.test_case "Table 6 (REPORTS)" `Quick test_table6;
          Alcotest.test_case "Table 7 (Example 4 result)" `Quick test_table7;
          Alcotest.test_case "Table 8 (EMPLOYEES-1NF)" `Quick test_table8;
          Alcotest.test_case "Tables 1-4 = decomposition of Table 5" `Quick test_decomposition_consistency;
        ] );
      ( "figures",
        [
          Alcotest.test_case "Fig 1 (segment tree)" `Quick test_fig1_segment_tree;
          Alcotest.test_case "Section 4.1 terminology" `Quick test_section41_terminology;
          Alcotest.test_case "1NF needs 4 tables" `Quick test_table_count_argument;
        ] );
    ]
