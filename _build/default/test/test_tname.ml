(* Tests for tuple names (Section 4.3 / Fig 8 of the paper). *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module P = Nf2_workload.Paper_data
module D = Nf2_storage.Disk
module BP = Nf2_storage.Buffer_pool
module OS = Nf2_storage.Object_store
module MD = Nf2_storage.Mini_directory
module TN = Nf2_tname.Tuple_name
module Db = Nf2.Db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk_store ?(layout = MD.SS3) () =
  let disk = D.create () in
  let pool = BP.create ~frames:128 disk in
  OS.create ~layout pool

let layouts = [ MD.SS1; MD.SS2; MD.SS3 ]

(* The Fig 8 t-names: U (dept 314 as a whole), V (project 17),
   T (member 56019), W (PROJECTS subtable), X (MEMBERS of project 17). *)
let test_fig8_names () =
  List.iter
    (fun layout ->
      let store = mk_store ~layout () in
      let root = OS.insert store P.departments (List.nth P.departments_rows 0) in
      let u = TN.of_object ~table:"DEPARTMENTS" root in
      let v = TN.of_subobject ~table:"DEPARTMENTS" root [ OS.Attr "PROJECTS"; OS.Elem 0 ] in
      let t =
        TN.of_subobject ~table:"DEPARTMENTS" root
          [ OS.Attr "PROJECTS"; OS.Elem 0; OS.Attr "MEMBERS"; OS.Elem 1 ]
      in
      let w = TN.of_subtable ~table:"DEPARTMENTS" root [ OS.Attr "PROJECTS" ] in
      let x = TN.of_subtable ~table:"DEPARTMENTS" root [ OS.Attr "PROJECTS"; OS.Elem 0; OS.Attr "MEMBERS" ] in
      (* resolution *)
      (match TN.resolve store P.departments u with
      | Value.Table { tuples = [ tup ]; _ } ->
          checkb "U = dept 314" true (Value.equal_tuple tup (List.nth P.departments_rows 0))
      | _ -> Alcotest.fail "U");
      (match TN.resolve store P.departments v with
      | Value.Table { tuples = [ Value.Atom (Atom.Int 17) :: _ ]; _ } -> ()
      | _ -> Alcotest.fail "V");
      (match TN.resolve store P.departments t with
      | Value.Table { tuples = [ [ Value.Atom (Atom.Int 56019); Value.Atom (Atom.Str "Consultant") ] ]; _ } -> ()
      | _ -> Alcotest.fail "T");
      (match TN.resolve store P.departments w with
      | Value.Table { tuples; _ } -> checki "W = 2 projects" 2 (List.length tuples)
      | _ -> Alcotest.fail "W");
      (match TN.resolve store P.departments x with
      | Value.Table { tuples; _ } -> checki "X = 3 members" 3 (List.length tuples)
      | _ -> Alcotest.fail "X");
      (* only subtable names are invalid as index addresses *)
      checkb "U valid" true (TN.valid_as_index_address u);
      checkb "V valid" true (TN.valid_as_index_address v);
      checkb "T valid" true (TN.valid_as_index_address t);
      checkb "W invalid" false (TN.valid_as_index_address w);
      checkb "X invalid" false (TN.valid_as_index_address x))
    layouts

let test_stability_under_unrelated_updates () =
  let store = mk_store () in
  let root = OS.insert store P.departments (List.nth P.departments_rows 0) in
  let t =
    TN.of_subobject ~table:"DEPARTMENTS" root [ OS.Attr "PROJECTS"; OS.Elem 0; OS.Attr "MEMBERS"; OS.Elem 1 ]
  in
  let resolve () =
    match TN.resolve store P.departments t with
    | Value.Table { tuples = [ Value.Atom (Atom.Int e) :: _ ]; _ } -> e
    | _ -> -1
  in
  checki "before" 56019 (resolve ());
  (* unrelated mutations: equipment and a new project *)
  OS.append_element store P.departments root [ OS.Attr "EQUIP" ] [ Value.int_ 7; Value.str "LASER" ];
  OS.append_element store P.departments root [ OS.Attr "PROJECTS" ]
    [ Value.int_ 99; Value.str "NEW"; Value.set [] ];
  OS.update_atoms store P.departments root [] [ Atom.Int 314; Atom.Int 56194; Atom.Int 999 ];
  checki "after unrelated updates" 56019 (resolve ());
  (* even object relocation (check-out) keeps t-names valid *)
  OS.relocate store root;
  checki "after relocation" 56019 (resolve ())

let test_malformed_paths_rejected () =
  (try
     ignore (TN.of_subobject ~table:"T" { Nf2_storage.Tid.page = 0; slot = 0 } [ OS.Attr "PROJECTS" ]);
     Alcotest.fail "subobject must end at element"
   with TN.Tname_error _ -> ());
  try
    ignore (TN.of_subtable ~table:"T" { Nf2_storage.Tid.page = 0; slot = 0 } [ OS.Attr "P"; OS.Elem 0 ]);
    Alcotest.fail "subtable must end at attribute"
  with TN.Tname_error _ -> ()

let test_registry_roundtrip () =
  let reg = TN.create_registry () in
  let tn = TN.of_object ~table:"DEPARTMENTS" { Nf2_storage.Tid.page = 3; slot = 1 } in
  let token = TN.register reg tn in
  checkb "token format" true (String.length token > 0 && token.[0] = 't');
  let back = TN.find_token reg token in
  checkb "roundtrip" true (back = tn);
  (try
     ignore (TN.find_token reg "t999999");
     Alcotest.fail "unknown token"
   with TN.Tname_error _ -> ());
  (* distinct tokens for distinct registrations *)
  let token2 = TN.register reg tn in
  checkb "unique tokens" true (token <> token2)

let test_db_level_tnames () =
  let db = Nf2.Demo.create () in
  let root = List.hd (Db.table_roots db ~table:"DEPARTMENTS") in
  let tok_obj = Db.tname_object db ~table:"DEPARTMENTS" root in
  let tok_sub = Db.tname_subobject db ~table:"DEPARTMENTS" root [ Db.OS.Attr "PROJECTS"; Db.OS.Elem 1 ] in
  let tok_tbl = Db.tname_subtable db ~table:"DEPARTMENTS" root [ Db.OS.Attr "EQUIP" ] in
  (match Db.resolve_tname db tok_obj with
  | Value.Table { tuples = [ tup ]; _ } -> checki "object arity" 5 (List.length tup)
  | _ -> Alcotest.fail "object tname");
  (match Db.resolve_tname db tok_sub with
  | Value.Table { tuples = [ Value.Atom (Atom.Int 23) :: _ ]; _ } -> ()
  | _ -> Alcotest.fail "subobject tname");
  match Db.resolve_tname db tok_tbl with
  | Value.Table { tuples; _ } -> checki "equip rows" 3 (List.length tuples)
  | _ -> Alcotest.fail "subtable tname"

let () =
  Alcotest.run "tname"
    [
      ( "tuple names",
        [
          Alcotest.test_case "Fig 8 names (all layouts)" `Quick test_fig8_names;
          Alcotest.test_case "stability" `Quick test_stability_under_unrelated_updates;
          Alcotest.test_case "malformed paths" `Quick test_malformed_paths_rejected;
          Alcotest.test_case "registry" `Quick test_registry_roundtrip;
          Alcotest.test_case "db-level" `Quick test_db_level_tnames;
        ] );
    ]
