(* Tests for the workload layer: paper fixtures and generators. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module P = Nf2_workload.Paper_data
module G = Nf2_workload.Generator

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_fixtures_conform () =
  checkb "DEPARTMENTS" true (Value.conforms P.departments P.departments_table);
  List.iter (Value.check_tuple P.departments_1nf.Schema.table) P.departments_1nf_rows;
  List.iter (Value.check_tuple P.projects_1nf.Schema.table) P.projects_1nf_rows;
  List.iter (Value.check_tuple P.members_1nf.Schema.table) P.members_1nf_rows;
  List.iter (Value.check_tuple P.equip_1nf.Schema.table) P.equip_1nf_rows;
  List.iter (Value.check_tuple P.employees_1nf.Schema.table) P.employees_1nf_rows;
  List.iter (Value.check_tuple P.reports.Schema.table) P.reports_rows;
  List.iter (Value.check_tuple P.example4_result_schema.Schema.table) P.example4_expected

let test_fixture_cross_consistency () =
  (* Table 8 covers every EMPNO of Table 5, including the managers *)
  let empnos =
    List.concat_map
      (fun d ->
        (match List.nth d 1 with Value.Atom (Atom.Int m) -> [ m ] | _ -> [])
        @ List.filter_map
            (function Atom.Int e -> Some e | _ -> None)
            (Value.atoms_on_path P.departments.Schema.table d [ "PROJECTS"; "MEMBERS"; "EMPNO" ]))
      P.departments_rows
    |> List.sort_uniq Int.compare
  in
  let in_t8 =
    List.filter_map
      (function Value.Atom (Atom.Int e) :: _ -> Some e | _ -> None)
      P.employees_1nf_rows
  in
  List.iter (fun e -> checkb (Printf.sprintf "EMPNO %d in Table 8" e) true (List.mem e in_t8)) empnos;
  (* the paper states employee numbers in Table 5 are unique *)
  checki "20 distinct employees (17 members + 3 managers)" 20 (List.length empnos)

let test_generator_determinism () =
  let a = G.departments () and b = G.departments () in
  checkb "same seed, same data" true
    (Value.equal_table { Value.kind = Schema.Set; tuples = a } { Value.kind = Schema.Set; tuples = b });
  let c = G.departments ~params:{ G.default_dept_params with G.seed = 1 } () in
  checkb "different seed differs" false
    (Value.equal_table { Value.kind = Schema.Set; tuples = a } { Value.kind = Schema.Set; tuples = c })

let test_generator_conformance () =
  let params = { G.default_dept_params with G.departments = 15 } in
  let rows = G.departments ~params () in
  checki "count" 15 (List.length rows);
  List.iter (Value.check_tuple P.departments.Schema.table) rows;
  (* employee numbers globally unique, as the paper assumes *)
  let empnos =
    List.concat_map
      (fun d ->
        List.filter_map (function Atom.Int e -> Some e | _ -> None)
          (Value.atoms_on_path P.departments.Schema.table d [ "PROJECTS"; "MEMBERS"; "EMPNO" ]))
      rows
  in
  checki "unique empnos" (List.length empnos) (List.length (List.sort_uniq Int.compare empnos))

let test_employees_for_covers () =
  let rows = G.departments ~params:{ G.default_dept_params with G.departments = 5 } () in
  let emps = G.employees_for ~seed:3 rows in
  List.iter (Value.check_tuple P.employees_1nf.Schema.table) emps;
  (* every member and manager appears exactly once *)
  let member_count =
    List.fold_left
      (fun acc d ->
        acc + 1 (* manager *)
        + List.length (Value.atoms_on_path P.departments.Schema.table d [ "PROJECTS"; "MEMBERS"; "EMPNO" ]))
      0 rows
  in
  checki "coverage" member_count (List.length emps)

let test_report_generator () =
  let rows = G.reports ~params:{ G.default_report_params with G.reports = 50 } () in
  checki "50 reports" 50 (List.length rows);
  List.iter (Value.check_tuple P.reports.Schema.table) rows;
  (* authors lists are non-empty and ordered tables *)
  List.iter
    (fun r ->
      match List.nth r 1 with
      | Value.Table t ->
          checkb "list kind" true (t.Value.kind = Schema.List);
          checkb "non-empty" true (t.Value.tuples <> [])
      | _ -> Alcotest.fail "authors")
    rows

let test_assembly_generator () =
  let rows = G.assemblies ~params:{ G.default_assembly_params with G.assemblies = 4 } () in
  checki "4 assemblies" 4 (List.length rows);
  List.iter (Value.check_tuple G.assemblies_schema.Schema.table) rows

let () =
  Alcotest.run "workload"
    [
      ( "fixtures",
        [
          Alcotest.test_case "conformance" `Quick test_fixtures_conform;
          Alcotest.test_case "cross consistency" `Quick test_fixture_cross_consistency;
        ] );
      ( "generators",
        [
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "departments conform" `Quick test_generator_conformance;
          Alcotest.test_case "employees coverage" `Quick test_employees_for_covers;
          Alcotest.test_case "reports" `Quick test_report_generator;
          Alcotest.test_case "assemblies" `Quick test_assembly_generator;
        ] );
    ]
