(* Scale tests: the engine at hundreds/thousands of objects — storage,
   indexes, language, persistence — with agreement checks against
   straightforward in-memory computation. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module Rel = Nf2_algebra.Rel
module P = Nf2_workload.Paper_data
module G = Nf2_workload.Generator
module D = Nf2_storage.Disk
module BP = Nf2_storage.Buffer_pool
module OS = Nf2_storage.Object_store
module BT = Nf2_index.Bptree
module VI = Nf2_index.Value_index
module Tid = Nf2_storage.Tid
module Db = Nf2.Db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let big_params = { G.default_dept_params with G.departments = 300; projects_per_dept = 4; members_per_project = 6 }

let big_rows = lazy (G.departments ~params:big_params ())

let test_store_at_scale () =
  let disk = D.create () in
  let pool = BP.create ~frames:64 disk in
  let store = OS.create pool in
  let rows = Lazy.force big_rows in
  let tids = List.map (OS.insert store P.departments) rows in
  checki "300 roots" 300 (List.length (OS.roots store));
  (* spot-check reconstruction across the range *)
  List.iter
    (fun i ->
      checkb
        (Printf.sprintf "object %d roundtrips" i)
        true
        (Value.equal_tuple (List.nth rows i) (OS.fetch store P.departments (List.nth tids i))))
    [ 0; 77; 150; 299 ];
  (* delete a band in the middle and verify neighbours *)
  List.iter (fun i -> OS.delete store P.departments (List.nth tids i)) [ 100; 101; 102 ];
  checki "297 roots" 297 (List.length (OS.roots store));
  checkb "neighbour intact" true
    (Value.equal_tuple (List.nth rows 103) (OS.fetch store P.departments (List.nth tids 103)))

let test_index_at_scale_agrees () =
  let disk = D.create () in
  let pool = BP.create ~frames:256 disk in
  let store = OS.create pool in
  let rows = Lazy.force big_rows in
  let tids = List.map (OS.insert store P.departments) rows in
  let idx = VI.create store P.departments VI.Hierarchical [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
  List.iter
    (fun fn ->
      let expect =
        List.filter
          (fun (_, tup) ->
            List.exists (Atom.equal (Atom.Str fn))
              (Value.atoms_on_path P.departments.Schema.table tup [ "PROJECTS"; "MEMBERS"; "FUNCTION" ]))
          (List.combine tids rows)
        |> List.map fst |> List.sort Tid.compare
      in
      let got = List.sort Tid.compare (VI.roots_for idx (Atom.Str fn)) in
      checkb ("index = scan for " ^ fn) true (List.equal Tid.equal expect got))
    [ "Leader"; "Consultant"; "Engineer" ]

let test_bptree_at_scale () =
  let t = BT.create () in
  let n = 50_000 in
  (* deterministic pseudo-random insertion order *)
  let rng = Prng.create 99 in
  let keys = Prng.shuffle rng (Array.init n (fun i -> i)) in
  Array.iter (fun k -> BT.insert t ~key:(Codec.key_of_int k) k) keys;
  BT.check t;
  checki "entries" n (BT.entry_count t);
  checkb "height logarithmic" true (BT.height t <= 7);
  (* point lookups *)
  List.iter (fun k -> Alcotest.(check (list int)) "find" [ k ] (BT.find t (Codec.key_of_int k)))
    [ 0; 1; 777; 49_999 ];
  (* range scan length *)
  let hits = BT.range t ~lo:(Codec.key_of_int 1000) ~hi:(Codec.key_of_int 1999) () in
  checki "1000 keys in range" 1000 (List.length hits);
  (* delete a stripe and re-verify *)
  for k = 2000 to 2999 do
    BT.remove t ~key:(Codec.key_of_int k) (fun _ -> true)
  done;
  checki "entries after remove" (n - 1000) (BT.entry_count t);
  Alcotest.(check (list int)) "removed" [] (BT.find t (Codec.key_of_int 2500))

let test_language_at_scale () =
  let db = Db.create () in
  Db.register_table db P.departments (Lazy.force big_rows);
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)");
  let via_index =
    Rel.cardinality
      (Db.query db
         "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : EXISTS z IN y.MEMBERS : z.FUNCTION = 'Engineer'")
  in
  (* same, forced through a scan by obfuscating the shape *)
  let via_scan =
    Rel.cardinality
      (Db.query db
         "SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS : EXISTS z IN y.MEMBERS : (z.FUNCTION = 'Engineer' OR 1 = 2)")
  in
  checki "index plan = scan plan" via_scan via_index;
  (* aggregation over the whole table *)
  match
    Rel.tuples (Db.query db "SELECT COUNT(x.PROJECTS) AS N FROM x IN DEPARTMENTS WHERE x.DNO = 250")
  with
  | [ [ Value.Atom (Atom.Int 4) ] ] -> ()
  | _ -> Alcotest.fail "count"

let test_persistence_at_scale () =
  let db = Db.create () in
  Db.register_table db P.departments (Lazy.force big_rows);
  ignore (Db.exec db "CREATE INDEX ON DEPARTMENTS (DNO)");
  let path = Filename.concat (Filename.get_temp_dir_name ()) "aimii_scale.db" in
  Db.save db path;
  let db' = Db.load path in
  Sys.remove path;
  checki "300 rows after load" 300
    (Rel.cardinality (Db.query db' "SELECT x.DNO FROM x IN DEPARTMENTS"));
  (match Rel.tuples (Db.query db' "SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 399") with
  | [ [ Value.Atom (Atom.Int _) ] ] -> ()
  | _ -> Alcotest.fail "indexed point query after load")

let test_text_index_at_scale () =
  let disk = D.create () in
  let pool = BP.create ~frames:256 disk in
  let store = OS.create pool in
  let rows = G.reports ~params:{ G.default_report_params with G.reports = 1000 } () in
  let tids = List.map (OS.insert store P.reports) rows in
  let ti = Nf2_index.Text_index.create store P.reports [ "TITLE" ] in
  List.iter
    (fun pat ->
      let mask = Masked.compile pat in
      let expect =
        List.filter
          (fun (_, tup) ->
            match List.nth tup 2 with
            | Value.Atom (Atom.Str title) -> Masked.matches_word mask title
            | _ -> false)
          (List.combine tids rows)
        |> List.length
      in
      checki ("matches for " ^ pat) expect (List.length (Nf2_index.Text_index.roots_matching ti pat)))
    [ "*comput*"; "recover?"; "*base" ]

let () =
  Alcotest.run "scale"
    [
      ( "scale",
        [
          Alcotest.test_case "object store (300 objects)" `Quick test_store_at_scale;
          Alcotest.test_case "index agrees with scan" `Quick test_index_at_scale_agrees;
          Alcotest.test_case "B+-tree (50k keys)" `Quick test_bptree_at_scale;
          Alcotest.test_case "language queries" `Quick test_language_at_scale;
          Alcotest.test_case "persistence" `Quick test_persistence_at_scale;
          Alcotest.test_case "text index (1000 docs)" `Quick test_text_index_at_scale;
        ] );
    ]
