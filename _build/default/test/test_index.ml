(* Tests for access paths: B+-tree, value indexes under the three
   addressing strategies of Section 4.2, and the word-fragment text
   index of Section 5. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module P = Nf2_workload.Paper_data
module G = Nf2_workload.Generator
module D = Nf2_storage.Disk
module BP = Nf2_storage.Buffer_pool
module OS = Nf2_storage.Object_store
module Tid = Nf2_storage.Tid
module BT = Nf2_index.Bptree
module VI = Nf2_index.Value_index
module TI = Nf2_index.Text_index

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk_store ?(layout = Nf2_storage.Mini_directory.SS3) () =
  let disk = D.create () in
  let pool = BP.create ~frames:256 disk in
  OS.create ~layout pool

(* --- B+-tree ------------------------------------------------------------ *)

let test_bptree_basic () =
  let t = BT.create () in
  for i = 0 to 999 do
    BT.insert t ~key:(Codec.key_of_int i) (i * 10)
  done;
  BT.check t;
  checki "entries" 1000 (BT.entry_count t);
  checkb "height grew" true (BT.height t > 1);
  Alcotest.(check (list int)) "find" [ 420 ] (BT.find t (Codec.key_of_int 42));
  Alcotest.(check (list int)) "missing" [] (BT.find t (Codec.key_of_int 5000));
  (* duplicate keys accumulate postings *)
  BT.insert t ~key:(Codec.key_of_int 42) 421;
  Alcotest.(check (list int)) "postings" [ 421; 420 ] (BT.find t (Codec.key_of_int 42))

let test_bptree_range () =
  let t = BT.create () in
  List.iter (fun i -> BT.insert t ~key:(Codec.key_of_int i) i) [ 5; 1; 9; 3; 7; 2; 8 ];
  let hits = BT.range t ~lo:(Codec.key_of_int 3) ~hi:(Codec.key_of_int 8) () in
  Alcotest.(check (list int)) "range keys in order" [ 3; 5; 7; 8 ] (List.concat_map snd hits);
  let all = BT.range t () in
  Alcotest.(check (list int)) "full scan sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (List.concat_map snd all)

let test_bptree_remove () =
  let t = BT.create () in
  for i = 0 to 99 do
    BT.insert t ~key:(Codec.key_of_int (i mod 10)) i
  done;
  checki "10 keys" 10 (BT.entry_count t);
  (* remove all postings of key 3 *)
  BT.remove t ~key:(Codec.key_of_int 3) (fun _ -> true);
  checki "9 keys" 9 (BT.entry_count t);
  Alcotest.(check (list int)) "gone" [] (BT.find t (Codec.key_of_int 3));
  (* selective posting removal *)
  BT.remove t ~key:(Codec.key_of_int 4) (fun v -> v >= 50);
  checkb "partial" true (List.for_all (fun v -> v < 50) (BT.find t (Codec.key_of_int 4)))

let test_bptree_prefix () =
  let t = BT.create () in
  List.iter (fun w -> BT.insert t ~key:w w) [ "comp"; "computer"; "compute"; "zebra"; "apple"; "com" ];
  let hits = BT.prefix_range t "comp" in
  Alcotest.(check (list string)) "prefix" [ "comp"; "compute"; "computer" ] (List.map fst hits)

let prop_bptree_vs_model =
  QCheck.Test.make ~name:"bptree vs assoc model" ~count:100
    QCheck.(list (pair (int_bound 100) (int_bound 3)))
    (fun ops ->
      let t = BT.create () in
      let model : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (k, op) ->
          if op = 0 then begin
            BT.remove t ~key:(Codec.key_of_int k) (fun _ -> true);
            Hashtbl.remove model k
          end
          else begin
            BT.insert t ~key:(Codec.key_of_int k) op;
            Hashtbl.replace model k (op :: Option.value ~default:[] (Hashtbl.find_opt model k))
          end)
        ops;
      BT.check t;
      Hashtbl.fold (fun k v acc -> acc && BT.find t (Codec.key_of_int k) = v) model true)

(* --- value indexes ---------------------------------------------------------- *)

let strategies = [ VI.Data_tid; VI.Root_tid; VI.Hierarchical ]

let test_roots_for_all_strategies () =
  List.iter
    (fun strategy ->
      let store = mk_store () in
      let tids = List.map (OS.insert store P.departments) P.departments_rows in
      let idx = VI.create store P.departments strategy [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
      let roots = VI.roots_for idx (Atom.Str "Consultant") in
      (* departments 314 and 218 have consultants *)
      checki (VI.strategy_name strategy ^ ": two departments") 2 (List.length roots);
      checkb "314 in" true (List.exists (Tid.equal (List.nth tids 0)) roots);
      checkb "218 in" true (List.exists (Tid.equal (List.nth tids 1)) roots);
      let none = VI.roots_for idx (Atom.Str "Janitor") in
      checki "no janitors" 0 (List.length none))
    strategies

let test_root_tid_dedup () =
  (* the Root_tid strategy must not store one posting per hit (dept 218
     has two consultants but one posting) *)
  let store = mk_store () in
  ignore (List.map (OS.insert store P.departments) P.departments_rows);
  let idx = VI.create store P.departments VI.Root_tid [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
  checki "one posting per object" 2 (List.length (VI.lookup idx (Atom.Str "Consultant")));
  let hier = VI.create store P.departments VI.Hierarchical [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
  checki "hier: one posting per occurrence" 3 (List.length (VI.lookup hier (Atom.Str "Consultant")))

let test_prefix_join_fig7 () =
  let store = mk_store () in
  ignore (List.map (OS.insert store P.departments) P.departments_rows);
  let pno_idx = VI.create store P.departments VI.Hierarchical [ "PROJECTS"; "PNO" ] in
  let fn_idx = VI.create store P.departments VI.Hierarchical [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
  (* PNO=17 and FUNCTION='Consultant' in the same project: dept 314 only *)
  let roots = VI.prefix_join pno_idx (Atom.Int 17) fn_idx (Atom.Str "Consultant") in
  checki "one object" 1 (List.length roots);
  (* PNO=23 has no consultant: empty *)
  let roots = VI.prefix_join pno_idx (Atom.Int 23) fn_idx (Atom.Str "Consultant") in
  checki "no object" 0 (List.length roots);
  (* non-hierarchical indexes refuse *)
  let data_idx = VI.create store P.departments VI.Data_tid [ "PROJECTS"; "PNO" ] in
  try
    ignore (VI.prefix_join data_idx (Atom.Int 17) fn_idx (Atom.Str "Consultant"));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_index_maintenance () =
  let store = mk_store () in
  let idx = VI.create store P.departments VI.Hierarchical [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
  let tid = OS.insert store P.departments (List.nth P.departments_rows 0) in
  VI.insert_object idx tid;
  checki "indexed after insert" 1 (List.length (VI.roots_for idx (Atom.Str "Consultant")));
  VI.remove_object idx tid;
  OS.delete store P.departments tid;
  checki "gone after remove" 0 (List.length (VI.roots_for idx (Atom.Str "Consultant")))

let test_range_lookup () =
  let store = mk_store () in
  ignore (List.map (OS.insert store P.departments) P.departments_rows);
  let idx = VI.create store P.departments VI.Hierarchical [ "BUDGET" ] in
  let hits = VI.lookup_range idx ~lo:(Atom.Int 300_000) ~hi:(Atom.Int 400_000) in
  checki "two budgets in range" 2 (List.length hits)

let test_index_path_validation () =
  let store = mk_store () in
  try
    ignore (VI.create store P.departments VI.Hierarchical [ "PROJECTS" ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_index_at_scale () =
  let store = mk_store () in
  let depts = G.departments ~params:{ G.default_dept_params with G.departments = 30 } () in
  let tids = List.map (OS.insert store P.departments) depts in
  let idx = VI.create store P.departments VI.Hierarchical [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
  (* every department generated has some Leader with prob ~1; check against a scan *)
  let expect =
    List.filter
      (fun (_, tup) ->
        List.exists (Atom.equal (Atom.Str "Leader"))
          (Value.atoms_on_path P.departments.Schema.table tup [ "PROJECTS"; "MEMBERS"; "FUNCTION" ]))
      (List.combine tids depts)
    |> List.map fst |> List.sort Tid.compare
  in
  let got = List.sort Tid.compare (VI.roots_for idx (Atom.Str "Leader")) in
  checkb "index agrees with scan" true (List.equal Tid.equal expect got)

let test_range_lookup_edges () =
  let store = mk_store () in
  ignore (List.map (OS.insert store P.departments) P.departments_rows);
  let idx = VI.create store P.departments VI.Hierarchical [ "BUDGET" ] in
  (* inclusive bounds *)
  checki "exact bounds" 3 (List.length (VI.lookup_range idx ~lo:(Atom.Int 320_000) ~hi:(Atom.Int 440_000)));
  checki "point range" 1 (List.length (VI.lookup_range idx ~lo:(Atom.Int 360_000) ~hi:(Atom.Int 360_000)));
  checki "empty range" 0 (List.length (VI.lookup_range idx ~lo:(Atom.Int 1) ~hi:(Atom.Int 2)));
  (* reversed bounds yield nothing *)
  checki "reversed" 0 (List.length (VI.lookup_range idx ~lo:(Atom.Int 999_999) ~hi:(Atom.Int 0)))

let test_root_dedup_survives_maintenance () =
  let store = mk_store () in
  let idx = VI.create store P.departments VI.Root_tid [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] in
  let tid = OS.insert store P.departments (List.nth P.departments_rows 1) in
  (* dept 218 has two consultants: still one posting *)
  VI.insert_object idx tid;
  checki "one posting" 1 (List.length (VI.lookup idx (Atom.Str "Consultant")));
  VI.remove_object idx tid;
  checki "gone" 0 (List.length (VI.lookup idx (Atom.Str "Consultant")));
  (* re-add is idempotent at one posting *)
  VI.insert_object idx tid;
  VI.insert_object idx tid;
  checki "still deduped" 1 (List.length (VI.roots_for idx (Atom.Str "Consultant")))

(* --- text index ----------------------------------------------------------------- *)

let mk_reports_store () =
  let store = mk_store () in
  ignore (List.map (OS.insert store P.reports) P.reports_rows);
  store

let test_text_masked_search () =
  let store = mk_reports_store () in
  let ti = TI.create store P.reports [ "TITLE" ] in
  (* '*onsist*' hits "Consistency" in report 0179 only *)
  checki "consistency" 1 (List.length (TI.roots_matching ti "*onsist*"));
  (* '*earch' (suffix-anchored) hits "Search" *)
  checki "search" 1 (List.length (TI.roots_matching ti "*earch"));
  (* 'branch*' (prefix-anchored) *)
  checki "branch" 1 (List.length (TI.roots_matching ti "branch*"));
  (* '?ound' single-char wildcard: "Bound" *)
  checki "bound" 1 (List.length (TI.roots_matching ti "?ound"));
  (* no match *)
  checki "none" 0 (List.length (TI.roots_matching ti "*quux*"))

let test_text_index_agrees_with_scan () =
  let store = mk_store () in
  let rows = G.reports ~params:{ G.default_report_params with G.reports = 120 } () in
  let tids = List.map (OS.insert store P.reports) rows in
  let ti = TI.create store P.reports [ "TITLE" ] in
  List.iter
    (fun pat ->
      let mask = Masked.compile pat in
      let expect =
        List.filter
          (fun (_, tup) ->
            match List.nth tup 2 with
            | Value.Atom (Atom.Str title) -> Masked.matches_word mask title
            | _ -> false)
          (List.combine tids rows)
        |> List.map fst |> List.sort Tid.compare
      in
      let got = List.sort Tid.compare (TI.roots_matching ti pat) in
      checkb (Printf.sprintf "pattern %s" pat) true (List.equal Tid.equal expect got))
    [ "*comput*"; "data*"; "*tion"; "index"; "*a*e*" ]

let test_text_index_maintenance () =
  let store = mk_reports_store () in
  let ti = TI.create store P.reports [ "TITLE" ] in
  let extra =
    P.report "9999" [ "Zuse" ] "Xylophone Acoustics" [ ("Music", 1.0) ]
  in
  let tid = OS.insert store P.reports extra in
  TI.insert_object ti tid;
  checki "new word found" 1 (List.length (TI.roots_matching ti "xylo*"));
  TI.remove_object ti tid;
  checki "removed" 0 (List.length (TI.roots_matching ti "xylo*"))

(* --- masked pattern unit tests ---------------------------------------------------- *)

let test_masked () =
  let m = Masked.compile "*comput*" in
  checkb "computational" true (Masked.matches m "computational");
  checkb "minicomputer" true (Masked.matches m "minicomputer");
  checkb "computer" true (Masked.matches m "computer");
  checkb "banana" false (Masked.matches m "banana");
  checkb "case-insensitive" true (Masked.matches m "COMPUTER");
  let anchored = Masked.compile "comput*" in
  checkb "prefix ok" true (Masked.matches anchored "computer");
  checkb "prefix fail" false (Masked.matches anchored "minicomputer");
  let q = Masked.compile "c?t" in
  checkb "cat" true (Masked.matches q "cat");
  checkb "cart" false (Masked.matches q "cart");
  checkb "word in text" true (Masked.matches_word m "introduction to computer science");
  checkb "no word" false (Masked.matches_word anchored "a minicomputer only")

let props = List.map QCheck_alcotest.to_alcotest [ prop_bptree_vs_model ]

let () =
  Alcotest.run "index"
    [
      ( "bptree",
        [
          Alcotest.test_case "basic" `Quick test_bptree_basic;
          Alcotest.test_case "range" `Quick test_bptree_range;
          Alcotest.test_case "remove" `Quick test_bptree_remove;
          Alcotest.test_case "prefix" `Quick test_bptree_prefix;
        ] );
      ( "value index",
        [
          Alcotest.test_case "roots_for (all strategies)" `Quick test_roots_for_all_strategies;
          Alcotest.test_case "root-tid dedup" `Quick test_root_tid_dedup;
          Alcotest.test_case "prefix join (Fig 7b)" `Quick test_prefix_join_fig7;
          Alcotest.test_case "maintenance" `Quick test_index_maintenance;
          Alcotest.test_case "range lookup" `Quick test_range_lookup;
          Alcotest.test_case "path validation" `Quick test_index_path_validation;
          Alcotest.test_case "at scale vs scan" `Quick test_index_at_scale;
          Alcotest.test_case "range edges" `Quick test_range_lookup_edges;
          Alcotest.test_case "root-tid maintenance" `Quick test_root_dedup_survives_maintenance;
        ] );
      ( "text index",
        [
          Alcotest.test_case "masked search" `Quick test_text_masked_search;
          Alcotest.test_case "agrees with scan" `Quick test_text_index_agrees_with_scan;
          Alcotest.test_case "maintenance" `Quick test_text_index_maintenance;
          Alcotest.test_case "masked patterns" `Quick test_masked;
        ] );
      ("properties", props);
    ]
