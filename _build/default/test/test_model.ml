(* Unit + property tests for the data model: atoms, schemas, values. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module P = Nf2_workload.Paper_data

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- atoms --------------------------------------------------------- *)

let atom_roundtrip a =
  let b = Codec.create_sink () in
  Atom.encode b a;
  let src = Codec.source_of_string (Codec.contents b) in
  Atom.decode src

let test_atom_codec () =
  let atoms =
    [
      Atom.Int 0; Atom.Int 42; Atom.Int (-17); Atom.Int max_int; Atom.Int min_int;
      Atom.Float 3.14; Atom.Float (-0.0); Atom.Float infinity;
      Atom.Str ""; Atom.Str "hello world"; Atom.Str "quo'te";
      Atom.Bool true; Atom.Bool false; Atom.Date 5128; Atom.Null;
    ]
  in
  List.iter (fun a -> checkb "roundtrip" true (Atom.equal a (atom_roundtrip a))) atoms

let test_atom_order () =
  checkb "int lt" true (Atom.compare (Atom.Int 1) (Atom.Int 2) < 0);
  checkb "null first" true (Atom.compare Atom.Null (Atom.Int (-100)) < 0);
  checkb "str" true (Atom.compare (Atom.Str "abc") (Atom.Str "abd") < 0);
  checkb "eq" true (Atom.equal (Atom.Date 10) (Atom.Date 10))

let test_atom_keys_order_preserving () =
  let ints = [ min_int; -5; -1; 0; 1; 7; 10_000; max_int ] in
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  List.iter
    (fun (a, b) ->
      checkb "int key order" true (String.compare (Atom.to_key (Atom.Int a)) (Atom.to_key (Atom.Int b)) < 0))
    (pairs ints);
  let floats = [ neg_infinity; -3.5; -0.25; 0.0; 0.5; 2.0; 1e30 ] in
  List.iter
    (fun (a, b) ->
      checkb "float key order" true
        (String.compare (Atom.to_key (Atom.Float a)) (Atom.to_key (Atom.Float b)) < 0))
    (pairs floats)

let test_dates () =
  (match Atom.date_of_string "1984-01-15" with
  | Some (Atom.Date d) ->
      check Alcotest.string "render" "1984-01-15" (Atom.to_string (Atom.Date d));
      let y, m, day = Atom.ymd_of_days d in
      checki "y" 1984 y;
      checki "m" 1 m;
      checki "d" 15 day
  | _ -> Alcotest.fail "date parse");
  (* leap-year day *)
  (match Atom.date_of_string "2000-02-29" with
  | Some a -> checks "leap" "2000-02-29" (Atom.to_string a)
  | None -> Alcotest.fail "leap parse");
  checkb "invalid" true (Atom.date_of_string "2001-02-29" = None);
  checkb "garbage" true (Atom.date_of_string "xyz" = None);
  (* pre-epoch *)
  match Atom.date_of_string "1969-12-31" with
  | Some (Atom.Date d) -> checki "pre-epoch" (-1) d
  | _ -> Alcotest.fail "pre-epoch parse"

(* --- schemas -------------------------------------------------------- *)

let test_schema_validate () =
  checkb "flat" true (Schema.flat P.departments_1nf.Schema.table);
  checkb "nested not flat" false (Schema.flat P.departments.Schema.table);
  checki "depth" 2 (Schema.depth P.departments.Schema.table);
  checki "table attrs" 3 (Schema.count_table_attrs P.departments.Schema.table);
  (* duplicate attribute rejected *)
  (try
     ignore (Schema.relation "BAD" [ Schema.int_ "A"; Schema.str_ "a" ]);
     Alcotest.fail "expected Schema_error"
   with Schema.Schema_error _ -> ());
  (* empty table rejected *)
  try
    ignore (Schema.relation "BAD" [ Schema.set_ "X" [] ]);
    Alcotest.fail "expected Schema_error"
  with Schema.Schema_error _ -> ()

let test_schema_codec () =
  let roundtrip s =
    let b = Codec.create_sink () in
    Schema.encode b s;
    Schema.decode (Codec.source_of_string (Codec.contents b))
  in
  List.iter
    (fun s ->
      let s' = roundtrip s in
      checks "name" s.Schema.name s'.Schema.name;
      checks "structure" (Schema.to_string s) (Schema.to_string s'))
    [ P.departments; P.reports; P.employees_1nf ]

let test_schema_paths () =
  (match Schema.resolve_path P.departments.Schema.table [ "PROJECTS"; "MEMBERS"; "FUNCTION" ] with
  | Schema.Atomic Atom.Tstring -> ()
  | _ -> Alcotest.fail "path type");
  (match Schema.resolve_path P.departments.Schema.table [ "PROJECTS" ] with
  | Schema.Table _ -> ()
  | _ -> Alcotest.fail "projects is a table");
  (* case-insensitive *)
  (match Schema.resolve_path P.departments.Schema.table [ "projects"; "pno" ] with
  | Schema.Atomic Atom.Tint -> ()
  | _ -> Alcotest.fail "case-insensitive path");
  try
    ignore (Schema.resolve_path P.departments.Schema.table [ "DNO"; "X" ]);
    Alcotest.fail "expected error"
  with Schema.Schema_error _ -> ()

let test_segment_tree () =
  let r = Schema.render_segment_tree P.departments in
  checkb "root line" true (String.length r > 0);
  checkb "has members" true
    (String.split_on_char '\n' r |> List.exists (fun l -> String.trim l |> String.starts_with ~prefix:"MEMBERS"))

(* --- values --------------------------------------------------------- *)

let test_conformance () =
  checkb "table 5 conforms" true (Value.conforms P.departments P.departments_table);
  checkb "wrong arity" false
    (Value.conforms_tuple P.departments.Schema.table [ Value.int_ 1 ]);
  checkb "wrong type" false
    (Value.conforms_tuple P.departments_1nf.Schema.table [ Value.str "x"; Value.int_ 1; Value.int_ 2 ]);
  (* NULL conforms to any atomic type *)
  checkb "null ok" true
    (Value.conforms_tuple P.departments_1nf.Schema.table [ Value.null; Value.int_ 1; Value.int_ 2 ])

let test_set_equality_order_insensitive () =
  let t1 = Value.set [ [ Value.int_ 1 ]; [ Value.int_ 2 ] ] in
  let t2 = Value.set [ [ Value.int_ 2 ]; [ Value.int_ 1 ] ] in
  checkb "sets equal" true (Value.equal_v t1 t2);
  let l1 = Value.list_ [ [ Value.int_ 1 ]; [ Value.int_ 2 ] ] in
  let l2 = Value.list_ [ [ Value.int_ 2 ]; [ Value.int_ 1 ] ] in
  checkb "lists differ" false (Value.equal_v l1 l2);
  checkb "kind differs" false (Value.equal_v t1 l1)

let test_field_access () =
  let d314 = List.nth P.departments_rows 0 in
  (match Value.field P.departments.Schema.table d314 "DNO" with
  | Value.Atom (Atom.Int 314) -> ()
  | _ -> Alcotest.fail "DNO");
  match Value.field P.departments.Schema.table d314 "PROJECTS" with
  | Value.Table t -> checki "two projects" 2 (List.length t.Value.tuples)
  | _ -> Alcotest.fail "PROJECTS"

let test_atoms_on_path () =
  let d314 = List.nth P.departments_rows 0 in
  let fns =
    Value.atoms_on_path P.departments.Schema.table d314 [ "PROJECTS"; "MEMBERS"; "FUNCTION" ]
  in
  checki "7 members" 7 (List.length fns);
  checkb "has consultant" true (List.exists (Atom.equal (Atom.Str "Consultant")) fns)

let test_structure_counts () =
  let d314 = List.nth P.departments_rows 0 in
  let subtables, complex = Value.structure_counts P.departments.Schema.table d314 in
  (* dept 314: PROJECTS + EQUIP + MEMBERS(17) + MEMBERS(23) = 4 subtables,
     projects 17 and 23 = 2 complex subobjects (Fig 6 of the paper) *)
  checki "subtables" 4 subtables;
  checki "complex subobjects" 2 complex

let test_value_codec () =
  List.iter
    (fun tup ->
      let b = Codec.create_sink () in
      Value.encode_tuple b tup;
      let tup' = Value.decode_tuple (Codec.source_of_string (Codec.contents b)) in
      checkb "tuple roundtrip" true (Value.equal_tuple tup tup'))
    (P.departments_rows @ P.reports_rows @ P.employees_1nf_rows)

let test_render () =
  let d314 = List.nth P.departments_rows 0 in
  let s = Value.render_tuple d314 in
  checkb "renders braces" true (String.contains s '{');
  let boxed = Value.render_named P.departments P.departments_table in
  checkb "named header" true (String.starts_with ~prefix:"{ DEPARTMENTS }" boxed);
  let r = Value.render_named P.reports { Value.kind = Schema.Set; tuples = P.reports_rows } in
  checkb "list marker" true (String.contains r '<' || String.length r > 0)

(* --- properties ----------------------------------------------------- *)

let arb_atom =
  QCheck.make ~print:Atom.to_string
    QCheck.Gen.(
      oneof
        [
          map (fun i -> Atom.Int i) small_signed_int;
          map (fun f -> Atom.Float f) (float_bound_inclusive 1000.0);
          map (fun s -> Atom.Str s) (string_size (int_bound 12));
          map (fun b -> Atom.Bool b) bool;
          map (fun d -> Atom.Date d) (int_bound 40000);
          return Atom.Null;
        ])

let prop_atom_codec =
  QCheck.Test.make ~name:"atom codec roundtrip" ~count:500 arb_atom (fun a ->
      Atom.equal a (atom_roundtrip a))

let prop_atom_key_order =
  QCheck.Test.make ~name:"atom key order-preserving (ints)" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let ka = Atom.to_key (Atom.Int a) and kb = Atom.to_key (Atom.Int b) in
      Int.compare a b = String.compare ka kb || (a = b && ka = kb))

let prop_varint =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500 QCheck.int (fun v ->
      let b = Codec.create_sink () in
      Codec.put_varint b v;
      Codec.get_varint (Codec.source_of_string (Codec.contents b)) = v)

let prop_date_roundtrip =
  QCheck.Test.make ~name:"ymd <-> days roundtrip" ~count:500
    QCheck.(triple (int_range 1900 2100) (int_range 1 12) (int_range 1 28))
    (fun (y, m, d) ->
      let days = Atom.days_of_ymd y m d in
      Atom.ymd_of_days days = (y, m, d))

let props = List.map QCheck_alcotest.to_alcotest [ prop_atom_codec; prop_atom_key_order; prop_varint; prop_date_roundtrip ]

let () =
  Alcotest.run "model"
    [
      ( "atom",
        [
          Alcotest.test_case "codec" `Quick test_atom_codec;
          Alcotest.test_case "order" `Quick test_atom_order;
          Alcotest.test_case "keys order-preserving" `Quick test_atom_keys_order_preserving;
          Alcotest.test_case "dates" `Quick test_dates;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validate" `Quick test_schema_validate;
          Alcotest.test_case "codec" `Quick test_schema_codec;
          Alcotest.test_case "paths" `Quick test_schema_paths;
          Alcotest.test_case "segment tree" `Quick test_segment_tree;
        ] );
      ( "value",
        [
          Alcotest.test_case "conformance" `Quick test_conformance;
          Alcotest.test_case "set equality" `Quick test_set_equality_order_insensitive;
          Alcotest.test_case "field access" `Quick test_field_access;
          Alcotest.test_case "atoms on path" `Quick test_atoms_on_path;
          Alcotest.test_case "structure counts" `Quick test_structure_counts;
          Alcotest.test_case "codec" `Quick test_value_codec;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ("properties", props);
    ]
