(* Tests for the comparison baselines: Lorie-style linked tuples and
   full 1NF decomposition. *)

module Atom = Nf2_model.Atom
module Schema = Nf2_model.Schema
module Value = Nf2_model.Value
module P = Nf2_workload.Paper_data
module G = Nf2_workload.Generator
module D = Nf2_storage.Disk
module BP = Nf2_storage.Buffer_pool
module Lorie = Nf2_baseline.Lorie
module Flat = Nf2_baseline.Flat_db
module Rel = Nf2_algebra.Rel
module Ops = Nf2_algebra.Ops

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk_pool () =
  let disk = D.create () in
  (disk, BP.create ~frames:256 disk)

(* --- Lorie linked tuples ------------------------------------------------- *)

let test_lorie_roundtrip () =
  let _, pool = mk_pool () in
  let t = Lorie.create pool P.departments in
  let tids = List.map (Lorie.insert t) P.departments_rows in
  List.iter2
    (fun tid expected -> checkb "roundtrip" true (Value.equal_tuple expected (Lorie.fetch t tid)))
    tids P.departments_rows;
  checki "roots" 3 (List.length (Lorie.roots t))

let test_lorie_preserves_list_order () =
  let _, pool = mk_pool () in
  let t = Lorie.create pool P.reports in
  let tids = List.map (Lorie.insert t) P.reports_rows in
  List.iter2
    (fun tid expected -> checkb "reports roundtrip" true (Value.equal_tuple expected (Lorie.fetch t tid)))
    tids P.reports_rows

let test_lorie_element_access () =
  let _, pool = mk_pool () in
  let t = Lorie.create pool P.departments in
  let tid = Lorie.insert t (List.nth P.departments_rows 0) in
  (match Lorie.fetch_element t tid ~attr:"PROJECTS" ~idx:1 with
  | Value.Atom (Atom.Int 23) :: _ -> ()
  | _ -> Alcotest.fail "project 23");
  try
    ignore (Lorie.fetch_element t tid ~attr:"PROJECTS" ~idx:9);
    Alcotest.fail "out of range"
  with Lorie.Lorie_error _ -> ()

let test_lorie_at_scale () =
  let _, pool = mk_pool () in
  let t = Lorie.create pool P.departments in
  let rows = G.departments ~params:{ G.default_dept_params with G.departments = 10 } () in
  let tids = List.map (Lorie.insert t) rows in
  List.iter2
    (fun tid expected -> checkb "scale roundtrip" true (Value.equal_tuple expected (Lorie.fetch t tid)))
    tids rows

(* --- 1NF decomposition ----------------------------------------------------- *)

let test_flat_roundtrip () =
  let _, pool = mk_pool () in
  let t = Flat.create pool P.departments in
  let sids = List.map (Flat.insert t) P.departments_rows in
  (* reconstruct everything: must equal the source as a set *)
  let rebuilt = Flat.reconstruct t in
  checkb "reconstruct" true
    (Value.equal_table
       { Value.kind = Schema.Set; tuples = rebuilt }
       { Value.kind = Schema.Set; tuples = P.departments_rows });
  (* single-object fetch *)
  List.iter2
    (fun sid expected -> checkb "fetch" true (Value.equal_tuple expected (Flat.fetch t sid)))
    sids P.departments_rows

let test_flat_levels () =
  let _, pool = mk_pool () in
  let t = Flat.create pool P.departments in
  ignore (List.map (Flat.insert t) P.departments_rows);
  let members = Flat.level_rel t "DEPARTMENTS.PROJECTS.MEMBERS" in
  checki "17 member rows" 17 (Rel.cardinality members);
  let projects = Flat.level_rel t "DEPARTMENTS.PROJECTS" in
  checki "4 project rows" 4 (Rel.cardinality projects);
  (* the surrogate join reconstructs membership counts *)
  let joined = Ops.equi_join (Ops.rename projects [ ("SID", "PSID"); ("PID", "PPID") ]) members ~left:"PSID" ~right:"PID" in
  checki "join has 17 rows" 17 (Rel.cardinality joined)

let test_flat_preserves_lists () =
  let _, pool = mk_pool () in
  let t = Flat.create pool P.reports in
  ignore (List.map (Flat.insert t) P.reports_rows);
  let rebuilt = Flat.reconstruct t in
  checkb "lists preserved" true
    (Value.equal_table
       { Value.kind = Schema.Set; tuples = rebuilt }
       { Value.kind = Schema.Set; tuples = P.reports_rows })

(* --- three-way agreement: AIM-II store vs Lorie vs 1NF ------------------------ *)

let test_three_way_agreement () =
  let rows = G.departments ~params:{ G.default_dept_params with G.departments = 6; G.seed = 5 } () in
  let disk = D.create () in
  let pool = BP.create ~frames:256 disk in
  let aim = Nf2_storage.Object_store.create pool in
  let aim_tids = List.map (Nf2_storage.Object_store.insert aim P.departments) rows in
  let lorie = Lorie.create pool P.departments in
  let lorie_tids = List.map (Lorie.insert lorie) rows in
  let flat = Flat.create pool P.departments in
  ignore (List.map (Flat.insert flat) rows);
  let aim_rows = List.map (Nf2_storage.Object_store.fetch aim P.departments) aim_tids in
  let lorie_rows = List.map (Lorie.fetch lorie) lorie_tids in
  let flat_rows = Flat.reconstruct flat in
  let as_set tuples = { Value.kind = Schema.Set; tuples } in
  checkb "aim = lorie" true (Value.equal_table (as_set aim_rows) (as_set lorie_rows));
  checkb "aim = flat" true (Value.equal_table (as_set aim_rows) (as_set flat_rows))


(* --- IMS navigational baseline ------------------------------------------- *)

module Ims = Nf2_baseline.Ims

let test_ims_roundtrip () =
  List.iter
    (fun org ->
      let _, pool = mk_pool () in
      let t = Ims.load ~organisation:org pool P.departments P.departments_rows in
      let rebuilt = Ims.reconstruct t in
      checkb
        (Ims.organisation_name org ^ " roundtrip")
        true
        (Value.equal_table
           { Value.kind = Schema.Set; tuples = rebuilt }
           { Value.kind = Schema.Set; tuples = P.departments_rows }))
    [ Ims.HSAM; Ims.HISAM; Ims.HDAM; Ims.HIDAM ]

let test_ims_get_next () =
  let _, pool = mk_pool () in
  let t = Ims.load pool P.departments P.departments_rows in
  let c = Ims.open_cursor t in
  (* GN without type: walks the hierarchic sequence; first segment is
     the first root *)
  (match Ims.get_next c with
  | Some s ->
      Alcotest.(check string) "root type" "DEPARTMENTS" s.Ims.seg_type;
      checki "level 0" 0 s.Ims.level
  | None -> Alcotest.fail "GN");
  (* GN by type: all MEMBERS segments, 17 of them *)
  let c = Ims.open_cursor t in
  let rec count n = match Ims.get_next ~segment:"MEMBERS" c with Some _ -> count (n + 1) | None -> n in
  checki "17 members via GN" 17 (count 0)

let test_ims_get_unique_and_gnp () =
  let _, pool = mk_pool () in
  let t = Ims.load pool P.departments P.departments_rows in
  let c = Ims.open_cursor t in
  (* GU DEPARTMENTS(DNO=314) / PROJECTS(PNO=17), then GNP over MEMBERS
     — the navigation the paper contrasts with a single NF2 query *)
  (match
     Ims.get_unique c
       [
         { Ims.seg = "DEPARTMENTS"; tests = [ (0, Atom.Int 314) ] };
         { Ims.seg = "PROJECTS"; tests = [ (0, Atom.Int 17) ] };
       ]
   with
  | Some s -> checki "project level" 1 s.Ims.level
  | None -> Alcotest.fail "GU");
  Ims.set_parent_level c 1;
  let rec collect acc =
    match Ims.get_next_within_parent ~segment:"MEMBERS" c with
    | Some s -> collect (s.Ims.fields :: acc)
    | None -> List.rev acc
  in
  let members = collect [] in
  checki "3 members of project 17" 3 (List.length members);
  checkb "56019 among them" true
    (List.exists (fun fs -> List.exists (Atom.equal (Atom.Int 56019)) fs) members)

let test_ims_gu_respects_subtree () =
  (* PNO=25 exists only in department 218: GU under department 314 must
     fail rather than match a later record's project *)
  let _, pool = mk_pool () in
  let t = Ims.load pool P.departments P.departments_rows in
  let c = Ims.open_cursor t in
  checkb "no project 25 in dept 314" true
    (Ims.get_unique c
       [
         { Ims.seg = "DEPARTMENTS"; tests = [ (0, Atom.Int 314) ] };
         { Ims.seg = "PROJECTS"; tests = [ (0, Atom.Int 25) ] };
       ]
    = None)

let test_ims_hdam_vs_hsam_cost () =
  (* HDAM enters through the root hash; HSAM scans from the front.
     Finding the LAST department must cost far fewer segment reads
     under HDAM. *)
  let n = 40 in
  let rows = G.departments ~params:{ G.default_dept_params with G.departments = n } () in
  let last_dno = match List.nth rows (n - 1) with Value.Atom (Atom.Int d) :: _ -> d | _ -> -1 in
  let cost org =
    let _, pool = mk_pool () in
    let t = Ims.load ~organisation:org pool P.departments rows in
    let c = Ims.open_cursor t in
    (match Ims.get_unique c [ { Ims.seg = "DEPARTMENTS"; tests = [ (0, Atom.Int last_dno) ] } ] with
    | Some _ -> ()
    | None -> Alcotest.fail "GU last");
    Ims.reads c
  in
  let hsam = cost Ims.HSAM
  and hisam = cost Ims.HISAM
  and hdam = cost Ims.HDAM
  and hidam = cost Ims.HIDAM in
  checkb "HDAM direct entry beats HSAM scan" true (hdam * 10 < hsam);
  checkb "HISAM indexed entry beats HSAM scan" true (hisam * 10 < hsam);
  checkb "HIDAM like HDAM" true (hidam = hdam)


(* --- CODASYL/DBTG sets ------------------------------------------------------- *)

module Cod = Nf2_baseline.Codasyl

let test_codasyl_roundtrip () =
  List.iter
    (fun mode ->
      let _, pool = mk_pool () in
      let t = Cod.create ~mode pool P.departments in
      let tids = List.map (Cod.insert t) P.departments_rows in
      List.iter2
        (fun tid expected ->
          checkb (Cod.mode_name mode ^ " roundtrip") true (Value.equal_tuple expected (Cod.fetch t tid)))
        tids P.departments_rows)
    [ Cod.Chain; Cod.Pointer_array ]

let test_codasyl_list_order () =
  List.iter
    (fun mode ->
      let _, pool = mk_pool () in
      let t = Cod.create ~mode pool P.reports in
      let tid = Cod.insert t (List.nth P.reports_rows 2) in
      checkb "ordered authors preserved" true
        (Value.equal_tuple (List.nth P.reports_rows 2) (Cod.fetch t tid)))
    [ Cod.Chain; Cod.Pointer_array ]

let test_codasyl_chain_vs_pointer_array_cost () =
  (* reaching the last member: the chain chases every NEXT pointer,
     the pointer array jumps directly — the trade-off Section 4.1
     weighs when it cites COSET techniques *)
  let nmembers = 50 in
  let schema = Schema.relation "R" [ Schema.int_ "ID"; Schema.set_ "XS" [ Schema.int_ "X" ] ] in
  let tup = [ Value.int_ 1; Value.set (List.init nmembers (fun i -> [ Value.int_ i ])) ] in
  let cost mode =
    let _, pool = mk_pool () in
    let t = Cod.create ~mode pool schema in
    let root = Cod.insert t tup in
    Cod.reset_reads t;
    ignore (Cod.locate_member t root ~attr:"XS" ~idx:(nmembers - 1));
    Cod.reads t
  in
  let chain = cost Cod.Chain and parray = cost Cod.Pointer_array in
  checkb "chain chases ~n records" true (chain >= nmembers - 1);
  checkb "pointer array is O(1)" true (parray <= 2);
  (* members agree across modes *)
  let fetch_last mode =
    let _, pool = mk_pool () in
    let t = Cod.create ~mode pool schema in
    let root = Cod.insert t tup in
    Cod.fetch t root
  in
  checkb "modes agree" true (Value.equal_tuple (fetch_last Cod.Chain) (fetch_last Cod.Pointer_array))

let prop_lorie_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, xs) ->
          [
            Value.int_ a;
            Value.set (List.map (fun (x, ys) ->
                [ Value.int_ x; Value.set (List.map (fun y -> [ Value.int_ y ]) ys) ]) xs);
          ])
        (pair small_nat (list_size (int_bound 4) (pair small_nat (list_size (int_bound 4) small_nat)))))
  in
  let schema =
    Schema.relation "R" [ Schema.int_ "A"; Schema.set_ "XS" [ Schema.int_ "X"; Schema.set_ "YS" [ Schema.int_ "Y" ] ] ]
  in
  QCheck.Test.make ~name:"lorie roundtrip (random)" ~count:80
    (QCheck.make ~print:Value.render_tuple gen)
    (fun tup ->
      let _, pool = mk_pool () in
      let t = Lorie.create pool schema in
      let tid = Lorie.insert t tup in
      Value.equal_tuple tup (Lorie.fetch t tid))

let prop_flat_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, xs) ->
          [
            Value.int_ a;
            Value.set (List.map (fun (x, ys) ->
                [ Value.int_ x; Value.set (List.map (fun y -> [ Value.int_ y ]) ys) ]) xs);
          ])
        (pair small_nat (list_size (int_bound 4) (pair small_nat (list_size (int_bound 4) small_nat)))))
  in
  let schema =
    Schema.relation "R" [ Schema.int_ "A"; Schema.set_ "XS" [ Schema.int_ "X"; Schema.set_ "YS" [ Schema.int_ "Y" ] ] ]
  in
  QCheck.Test.make ~name:"flat_db roundtrip (random)" ~count:80
    (QCheck.make ~print:Value.render_tuple gen)
    (fun tup ->
      let _, pool = mk_pool () in
      let t = Flat.create pool schema in
      let sid = Flat.insert t tup in
      Value.equal_tuple tup (Flat.fetch t sid))

let prop_ims_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, xs) ->
          [
            Value.int_ a;
            Value.set
              (List.map
                 (fun (x, ys) -> [ Value.int_ x; Value.set (List.map (fun y -> [ Value.int_ y ]) ys) ])
                 xs);
          ])
        (pair small_nat (list_size (int_bound 4) (pair small_nat (list_size (int_bound 4) small_nat)))))
  in
  let schema =
    Schema.relation "R" [ Schema.int_ "A"; Schema.set_ "XS" [ Schema.int_ "X"; Schema.set_ "YS" [ Schema.int_ "Y" ] ] ]
  in
  QCheck.Test.make ~name:"ims reconstruct (random)" ~count:60
    (QCheck.make ~print:Value.render_tuple gen)
    (fun tup ->
      let _, pool = mk_pool () in
      let t = Ims.load pool schema [ tup ] in
      match Ims.reconstruct t with [ got ] -> Value.equal_tuple tup got | _ -> false)

let prop_codasyl_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, xs) ->
          [
            Value.int_ a;
            Value.set
              (List.map
                 (fun (x, ys) -> [ Value.int_ x; Value.set (List.map (fun y -> [ Value.int_ y ]) ys) ])
                 xs);
          ])
        (pair small_nat (list_size (int_bound 4) (pair small_nat (list_size (int_bound 4) small_nat)))))
  in
  let schema =
    Schema.relation "R" [ Schema.int_ "A"; Schema.set_ "XS" [ Schema.int_ "X"; Schema.set_ "YS" [ Schema.int_ "Y" ] ] ]
  in
  QCheck.Test.make ~name:"codasyl roundtrip (random, both modes)" ~count:60
    (QCheck.make ~print:Value.render_tuple gen)
    (fun tup ->
      List.for_all
        (fun mode ->
          let _, pool = mk_pool () in
          let t = Cod.create ~mode pool schema in
          let root = Cod.insert t tup in
          Value.equal_tuple tup (Cod.fetch t root))
        [ Cod.Chain; Cod.Pointer_array ])

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lorie_roundtrip; prop_flat_roundtrip; prop_ims_roundtrip; prop_codasyl_roundtrip ]

let () =
  Alcotest.run "baseline"
    [
      ( "lorie",
        [
          Alcotest.test_case "roundtrip" `Quick test_lorie_roundtrip;
          Alcotest.test_case "list order" `Quick test_lorie_preserves_list_order;
          Alcotest.test_case "element access" `Quick test_lorie_element_access;
          Alcotest.test_case "at scale" `Quick test_lorie_at_scale;
        ] );
      ( "flat 1NF",
        [
          Alcotest.test_case "roundtrip" `Quick test_flat_roundtrip;
          Alcotest.test_case "levels/joins" `Quick test_flat_levels;
          Alcotest.test_case "lists preserved" `Quick test_flat_preserves_lists;
        ] );
      ("agreement", [ Alcotest.test_case "three-way" `Quick test_three_way_agreement ]);
      ( "codasyl",
        [
          Alcotest.test_case "roundtrip (both modes)" `Quick test_codasyl_roundtrip;
          Alcotest.test_case "list order" `Quick test_codasyl_list_order;
          Alcotest.test_case "chain vs pointer array" `Quick test_codasyl_chain_vs_pointer_array_cost;
        ] );
      ( "ims",
        [
          Alcotest.test_case "roundtrip (HSAM/HDAM)" `Quick test_ims_roundtrip;
          Alcotest.test_case "GN" `Quick test_ims_get_next;
          Alcotest.test_case "GU + GNP" `Quick test_ims_get_unique_and_gnp;
          Alcotest.test_case "GU subtree scoping" `Quick test_ims_gu_respects_subtree;
          Alcotest.test_case "HDAM vs HSAM cost" `Quick test_ims_hdam_vs_hsam_cost;
        ] );
      ("properties", props);
    ]
