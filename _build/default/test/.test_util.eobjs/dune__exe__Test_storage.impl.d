test/test_storage.ml: Alcotest Bytes Char Codec Hashtbl List Nf2_model Nf2_storage Nf2_workload Option Printf QCheck QCheck_alcotest String
