test/test_wal.ml: Alcotest Bytes List Nf2 Nf2_algebra Nf2_model Nf2_storage Option Printf Prng
