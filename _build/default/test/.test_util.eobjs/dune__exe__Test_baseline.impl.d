test/test_baseline.ml: Alcotest List Nf2_algebra Nf2_baseline Nf2_model Nf2_storage Nf2_workload QCheck QCheck_alcotest
