test/test_temporal.ml: Alcotest Codec List Nf2 Nf2_algebra Nf2_model Nf2_storage Nf2_temporal Nf2_workload String
