test/test_lock.ml: Alcotest List Nf2_lock Nf2_model Printf QCheck QCheck_alcotest
