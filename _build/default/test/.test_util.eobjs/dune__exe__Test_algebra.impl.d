test/test_algebra.ml: Alcotest List Nf2_algebra Nf2_model Nf2_workload Printf QCheck QCheck_alcotest String
