test/test_scale.ml: Alcotest Array Codec Filename Lazy List Masked Nf2 Nf2_algebra Nf2_index Nf2_model Nf2_storage Nf2_workload Printf Prng Sys
