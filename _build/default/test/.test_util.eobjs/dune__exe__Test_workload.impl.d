test/test_workload.ml: Alcotest Int List Nf2_model Nf2_workload Printf
