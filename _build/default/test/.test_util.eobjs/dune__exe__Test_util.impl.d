test/test_util.ml: Alcotest Array Ascii_table Bytes Codec Int List Masked Prng QCheck QCheck_alcotest String
