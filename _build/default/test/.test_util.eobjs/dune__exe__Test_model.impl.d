test/test_model.ml: Alcotest Codec Int List Nf2_model Nf2_workload QCheck QCheck_alcotest String
