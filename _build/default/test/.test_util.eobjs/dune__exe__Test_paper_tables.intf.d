test/test_paper_tables.mli:
