test/test_paper_tables.ml: Alcotest Lazy List Nf2 Nf2_algebra Nf2_model Nf2_workload Printf String
