test/test_tname.ml: Alcotest List Nf2 Nf2_model Nf2_storage Nf2_tname Nf2_workload String
