test/test_persistence.ml: Alcotest Filename List Nf2 Nf2_algebra Nf2_model Nf2_storage Nf2_temporal Nf2_workload Option Out_channel Printf String Sys Unix
