test/test_lang.ml: Alcotest Ast Eval Fun Lexer List Nf2 Nf2_algebra Nf2_lang Nf2_model Nf2_workload Parser Printf QCheck QCheck_alcotest Rewrite String
