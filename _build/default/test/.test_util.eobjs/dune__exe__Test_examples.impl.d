test/test_examples.ml: Alcotest In_channel Int Lazy List Nf2 Nf2_algebra Nf2_model Nf2_storage Nf2_workload String Sys
