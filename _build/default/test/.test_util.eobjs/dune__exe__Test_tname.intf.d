test/test_tname.mli:
