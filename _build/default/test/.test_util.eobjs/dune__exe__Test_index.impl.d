test/test_index.ml: Alcotest Codec Hashtbl List Masked Nf2_index Nf2_model Nf2_storage Nf2_workload Option Printf QCheck QCheck_alcotest
