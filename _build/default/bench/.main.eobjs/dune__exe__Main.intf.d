bench/main.mli:
