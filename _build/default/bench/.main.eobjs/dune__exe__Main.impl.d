bench/main.ml: Array Fun Harness Lazy List Masked Nf2 Nf2_algebra Nf2_baseline Nf2_index Nf2_model Nf2_storage Nf2_temporal Nf2_tname Nf2_workload Option Printf Prng String Sys Wal
