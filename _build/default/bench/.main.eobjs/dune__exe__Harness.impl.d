bench/harness.ml: Analyze Ascii_table Bechamel Benchmark Float Hashtbl Instance List Measure Nf2_storage Printf Staged Test Time Toolkit Unix
