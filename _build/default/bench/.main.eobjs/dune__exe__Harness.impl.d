bench/harness.ml: Analyze Ascii_table Bechamel Benchmark Float Hashtbl Instance List Measure Nf2 Nf2_storage Option Printf Staged Test Time Toolkit Unix
